package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSpanTreeDeterministicIDs(t *testing.T) {
	tc := NewTracer("shard0")
	tr := tc.NewTrace("trace-1")
	ctx := ContextWithTrace(context.Background(), tr, "lb-9")

	ctx, root := StartSpan(ctx, "service.plan")
	cctx, child := StartSpan(ctx, "cache.memory", "result", "miss")
	child.End()
	_, grand := StartSpan(cctx, "cache.disk")
	grand.End()
	root.End()

	ex := tr.Export()
	if len(ex.Spans) != 3 {
		t.Fatalf("got %d spans", len(ex.Spans))
	}
	byName := map[string]SpanExport{}
	for _, s := range ex.Spans {
		byName[s.Name] = s
	}
	r := byName["service.plan"]
	if r.ID != "shard0-1" || r.Parent != "lb-9" {
		t.Fatalf("root id/parent = %q/%q; remote parent must connect", r.ID, r.Parent)
	}
	if byName["cache.memory"].Parent != r.ID {
		t.Fatalf("child parent %q != root %q", byName["cache.memory"].Parent, r.ID)
	}
	if byName["cache.disk"].Parent != byName["cache.memory"].ID {
		t.Fatal("grandchild did not nest under child context")
	}
	if byName["cache.memory"].Attrs["result"] != "miss" {
		t.Fatal("span attrs lost")
	}
	for _, s := range ex.Spans {
		if s.StartUs < r.StartUs {
			t.Fatalf("span %s starts before root", s.Name)
		}
	}
}

func TestStartSpanNoTraceIsNoop(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "anything")
	if s != nil {
		t.Fatal("expected nil span without a trace")
	}
	s.End()             // must not panic
	s.SetAttr("k", "v") // must not panic
	if s.ID() != "" {
		t.Fatal("nil span has an ID")
	}
	if SpanHook(ctx) != nil {
		t.Fatal("expected nil hook without a trace")
	}
}

func TestSpanHookAttachesUnderCurrentSpan(t *testing.T) {
	tc := NewTracer("p")
	tr := tc.NewTrace("t")
	ctx := ContextWithTrace(context.Background(), tr, "")
	ctx, search := StartSpan(ctx, "planner.search")
	hook := SpanHook(ctx)
	if hook == nil {
		t.Fatal("nil hook with a live trace")
	}
	end := hook("dp.probe", "b", "4")
	end()
	search.End()

	ex := tr.Export()
	var probe *SpanExport
	for i := range ex.Spans {
		if ex.Spans[i].Name == "dp.probe" {
			probe = &ex.Spans[i]
		}
	}
	if probe == nil || probe.Parent != search.ID() {
		t.Fatalf("probe span missing or detached: %+v", probe)
	}
	if probe.Attrs["b"] != "4" {
		t.Fatal("hook kv lost")
	}
}

func TestTraceLogUnionRebuildsTree(t *testing.T) {
	var buf bytes.Buffer
	log := NewTraceLog(&buf)

	lb := NewTracer("lb")
	ltr := lb.NewTrace("req-1")
	lctx, lroot := StartSpan(ContextWithTrace(context.Background(), ltr, ""), "router.plan")
	_, attempt := StartSpan(lctx, "backend.attempt")

	sh := NewTracer("shard1")
	str := sh.NewTrace("req-1")
	_, sroot := StartSpan(ContextWithTrace(context.Background(), str, attempt.ID()), "service.plan")
	sroot.End()
	attempt.End()
	lroot.End()
	log.Log(ltr)
	log.Log(str)

	var spans []SpanExport
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ex TraceExport
		if err := json.Unmarshal([]byte(line), &ex); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if ex.TraceID != "req-1" {
			t.Fatalf("trace id %q", ex.TraceID)
		}
		spans = append(spans, ex.Spans...)
	}
	ids := map[string]bool{}
	roots := 0
	for _, s := range spans {
		ids[s.ID] = true
	}
	for _, s := range spans {
		if s.Parent == "" {
			roots++
		} else if !ids[s.Parent] {
			t.Fatalf("span %s has dangling parent %s", s.ID, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("unioned tree has %d roots, want 1", roots)
	}
}

func TestMiddlewareEnvelopeAndPropagation(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, s := StartSpan(r.Context(), "work")
		s.End()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	})
	h := Middleware(inner, HTTPOptions{
		Tracer:     NewTracer("svc"),
		Route:      func(*http.Request) string { return "plan" },
		SpanPrefix: "service.",
	})

	// Untraced request: trace ID minted and echoed, body untouched.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/plan", nil))
	if rec.Header().Get(TraceHeader) == "" {
		t.Fatal("no minted trace ID on response")
	}
	if rec.Body.String() != `{"ok":true}` {
		t.Fatalf("untraced body rewritten: %q", rec.Body.String())
	}

	// Traced request: envelope wraps the body; remote parent connects.
	req := httptest.NewRequest("POST", "/v1/plan?trace=1", nil)
	req.Header.Set(TraceHeader, "t-42")
	req.Header.Set(ParentHeader, "lb-7")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(TraceHeader); got != "t-42" {
		t.Fatalf("trace header %q, want t-42", got)
	}
	traces, payload, ok := UnwrapEnvelope(rec.Body.Bytes())
	if !ok || len(traces) != 1 {
		t.Fatalf("expected one envelope, got ok=%v n=%d", ok, len(traces))
	}
	if string(payload) != `{"ok":true}` {
		t.Fatalf("payload %q", payload)
	}
	if traces[0].TraceID != "t-42" || traces[0].Process != "svc" {
		t.Fatalf("trace export %+v", traces[0])
	}
	var root *SpanExport
	for i := range traces[0].Spans {
		if traces[0].Spans[i].Name == "service.plan" {
			root = &traces[0].Spans[i]
		}
	}
	if root == nil || root.Parent != "lb-7" {
		t.Fatalf("root span missing or detached from remote parent: %+v", root)
	}
}

func TestPropagateStampsHeaders(t *testing.T) {
	tc := NewTracer("svc")
	tr := tc.NewTrace("t9")
	ctx, s := StartSpan(ContextWithTrace(context.Background(), tr, ""), "peer.fill")
	req := httptest.NewRequest("GET", "http://peer/v1/artifacts/x", nil)
	Propagate(ctx, req)
	if req.Header.Get(TraceHeader) != "t9" || req.Header.Get(ParentHeader) != s.ID() {
		t.Fatalf("headers %q %q", req.Header.Get(TraceHeader), req.Header.Get(ParentHeader))
	}
	// No trace: leaves the request untouched.
	req2 := httptest.NewRequest("GET", "http://peer/", nil)
	Propagate(context.Background(), req2)
	if req2.Header.Get(TraceHeader) != "" {
		t.Fatal("propagate stamped headers without a trace")
	}
}
