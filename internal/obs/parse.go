package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition output into a flat map
// keyed by the full series identity (`name` or `name{labels}`) — the
// inverse of WriteText, used by the round-trip tests that assert
// /metrics and /v1/stats agree, and by fleetgen's scrape checks. Only
// the subset of the format WriteText emits is understood; a malformed
// sample line is an error, comment lines are skipped.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space outside braces;
		// label values may themselves contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: malformed sample line %q", line)
		}
		key, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		if key == "" || strings.ContainsAny(key[:1], "0123456789") {
			return nil, fmt.Errorf("obs: malformed series name in %q", line)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
