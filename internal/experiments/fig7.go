package experiments

import (
	"fmt"

	"graphpipe/internal/models"
	"graphpipe/internal/trace"
)

// Fig7BranchRow is one point of Figure 7 (left): CANDLE-Uno variant with a
// given branch count on a given device count; throughputs normalized to
// PipeDream.
type Fig7BranchRow struct {
	Branches int
	Devices  int
	Outcomes map[System]Outcome
	// Normalized is GraphPipe / PipeDream throughput.
	Normalized float64
}

// Fig7Branches regenerates the left sub-figure: throughput versus number of
// parallel branches for the CANDLE-Uno model at 4, 8, and 16 GPUs. The
// paper normalizes to PipeDream; Piper cannot produce strategies here
// (footnote 3), so only the two systems run.
func Fig7Branches(branchCounts, devices []int, miniBatchPerBranchUnit int) ([]Fig7BranchRow, error) {
	if len(branchCounts) == 0 {
		branchCounts = []int{2, 4, 8, 16}
	}
	if len(devices) == 0 {
		devices = []int{4, 8, 16}
	}
	if miniBatchPerBranchUnit == 0 {
		miniBatchPerBranchUnit = 1024
	}
	systems := []System{PipeDream, GraphPipe}
	var rows []Fig7BranchRow
	var jobs []Job
	for _, devs := range devices {
		for _, br := range branchCounts {
			cfg := models.DefaultCANDLEUnoConfig()
			cfg.Branches = br
			g := models.CANDLEUno(cfg)
			// Scale the mini-batch with the device count as in the paper's
			// per-device-count sizing.
			mb := miniBatchPerBranchUnit * devs
			rows = append(rows, Fig7BranchRow{Branches: br, Devices: devs, Outcomes: map[System]Outcome{}})
			for _, sys := range systems {
				jobs = append(jobs, Job{System: sys, Graph: g, Devices: devs, MiniBatch: mb})
			}
		}
	}
	for i, o := range RunGrid(jobs) {
		rows[i/len(systems)].Outcomes[o.System] = o
	}
	for i := range rows {
		gp, pd := rows[i].Outcomes[GraphPipe], rows[i].Outcomes[PipeDream]
		if !gp.Failed && !pd.Failed && pd.Throughput > 0 {
			rows[i].Normalized = gp.Throughput / pd.Throughput
		}
	}
	return rows, nil
}

// Fig7BranchesCSV renders the branch sweep.
func Fig7BranchesCSV(rows []Fig7BranchRow) *trace.CSV {
	c := trace.NewCSV("devices", "branches", "pipedream_samples_per_s",
		"graphpipe_samples_per_s", "graphpipe_normalized")
	for _, r := range rows {
		c.Add(r.Devices, r.Branches,
			FmtThroughput(r.Outcomes[PipeDream]),
			FmtThroughput(r.Outcomes[GraphPipe]),
			fmt.Sprintf("%.2f", r.Normalized))
	}
	return c
}

// Fig7MicroBatchRow is one point of Figure 7 (right): both systems forced
// to a fixed micro-batch size on the four-branch MMT, mini-batch 128,
// 8 GPUs.
type Fig7MicroBatchRow struct {
	MicroBatch int
	Outcomes   map[System]Outcome
}

// Fig7MicroBatch regenerates the right sub-figure. Fixing the micro-batch
// size equalizes operational intensity, so any gap is attributable to
// pipeline depth alone (§7.3).
func Fig7MicroBatch(sizes []int) ([]Fig7MicroBatchRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 4, 8, 16}
	}
	g := models.MMT(models.DefaultMMTConfig()) // four branches
	const devices, miniBatch = 8, 128
	systems := []System{PipeDream, GraphPipe}
	var rows []Fig7MicroBatchRow
	var jobs []Job
	for _, b := range sizes {
		if miniBatch%b != 0 {
			return nil, fmt.Errorf("experiments: micro-batch %d does not divide %d", b, miniBatch)
		}
		rows = append(rows, Fig7MicroBatchRow{MicroBatch: b, Outcomes: map[System]Outcome{}})
		for _, sys := range systems {
			jobs = append(jobs, Job{System: sys, Graph: g, Devices: devices, MiniBatch: miniBatch,
				Opts: RunOptions{ForcedMicroBatch: b}})
		}
	}
	for i, o := range RunGrid(jobs) {
		rows[i/len(systems)].Outcomes[o.System] = o
	}
	return rows, nil
}

// Fig7MicroBatchCSV renders the fixed micro-batch sweep.
func Fig7MicroBatchCSV(rows []Fig7MicroBatchRow) *trace.CSV {
	c := trace.NewCSV("micro_batch", "pipedream_samples_per_s", "graphpipe_samples_per_s",
		"graphpipe_depth", "pipedream_depth")
	for _, r := range rows {
		c.Add(r.MicroBatch,
			FmtThroughput(r.Outcomes[PipeDream]),
			FmtThroughput(r.Outcomes[GraphPipe]),
			r.Outcomes[GraphPipe].Depth,
			r.Outcomes[PipeDream].Depth)
	}
	return c
}
