package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the testdata golden files from this run's output")

// withDeviceCounts shrinks the device sweep for a driver smoke test and
// restores the paper's sweep afterwards.
func withDeviceCounts(t *testing.T, counts []int) {
	t.Helper()
	old := deviceCounts
	deviceCounts = counts
	t.Cleanup(func() { deviceCounts = old })
}

// checkGolden compares rendered driver output against a committed
// golden file; -update-golden rewrites it.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestFig6GoldenSynth regression-pins the Figure 6 driver's plumbing on
// a tiny synthetic model: the full CSV — planner choices, simulated
// throughputs, speedup ratios — is deterministic (seeded model, virtual
// time) and must match the committed golden byte for byte.
func TestFig6GoldenSynth(t *testing.T) {
	withDeviceCounts(t, []int{2, 4})
	res, err := Fig6("synth:mixed/seed=1", Systems)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6_synth.golden", res.CSV(Systems).String())
}

// TestTable1GoldenSynth regression-pins the Table 1 driver's plumbing
// the same way. Search seconds are wall-clock and can never be golden,
// so every cell that parses as a number is replaced by "ok" before the
// comparison — what stays pinned is the table shape, the model/devices
// columns, and which cells failed (✗) versus produced a measurement.
func TestTable1GoldenSynth(t *testing.T) {
	withDeviceCounts(t, []int{2, 4})
	res, err := Table1For([]string{"synth:skew/seed=2"}, Systems)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1_synth.golden", sanitizeNumbers(res.CSV(Systems).String()))
}

// sanitizeNumbers replaces numeric CSV cells beyond the first two
// columns with "ok", keeping header, identity columns, ✗, and "-".
func sanitizeNumbers(csv string) string {
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	for i, line := range lines {
		cells := strings.Split(line, ",")
		for j := 2; j < len(cells); j++ {
			if _, err := strconv.ParseFloat(cells[j], 64); err == nil {
				cells[j] = "ok"
			}
		}
		lines[i] = strings.Join(cells, ",")
	}
	return strings.Join(lines, "\n") + "\n"
}
