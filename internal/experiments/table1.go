package experiments

import (
	"fmt"

	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/synth"
	"graphpipe/internal/trace"
)

// Table1Row is one (model, devices) row of Table 1: planner search times.
type Table1Row struct {
	Model    string
	Devices  int
	Outcomes map[System]Outcome
}

// Table1Result holds the whole table.
type Table1Result struct {
	Rows []Table1Row
}

// table1Graph builds the search-time experiment's model variants. Per §7.2
// the Multi-Modal Transformer used for the search-time comparison has two
// branches; DLRM and CANDLE-Uno keep their eight-plus-branch structure,
// which is what defeats Piper.
func table1Graph(model string, devs int) (*graph.Graph, int, error) {
	if synth.IsSpec(model) {
		// Synthetic models run the same search-time plumbing with the
		// proportional mini-batch pairing (smoke tests pin this path).
		return models.Build(model, 0, devs)
	}
	switch model {
	case "mmt-2b":
		cfg := models.DefaultMMTConfig()
		cfg.Branches = 2
		mb, err := models.PaperMiniBatch("mmt", devs)
		return models.MMT(cfg), mb, err
	case "dlrm":
		mb, err := models.PaperMiniBatch("dlrm", devs)
		return models.DLRM(models.DefaultDLRMConfig()), mb, err
	case "candle-uno":
		mb, err := models.PaperMiniBatch("candle-uno", devs)
		return models.CANDLEUno(models.DefaultCANDLEUnoConfig()), mb, err
	default:
		return nil, 0, fmt.Errorf("experiments: unknown table-1 model %q", model)
	}
}

// Table1Models lists the table's model columns.
var Table1Models = []string{"mmt-2b", "dlrm", "candle-uno"}

// Table1 regenerates the search-time comparison. SearchTime and Failed (✗)
// are the payload; throughput is incidental.
func Table1(systems []System) (*Table1Result, error) {
	return Table1For(Table1Models, systems)
}

// Table1For runs the search-time comparison over an explicit model
// list — the paper columns, or synth: specs for the smoke tests.
func Table1For(modelNames []string, systems []System) (*Table1Result, error) {
	res := &Table1Result{}
	var jobs []Job
	for _, m := range modelNames {
		for _, devs := range DeviceCounts() {
			g, mb, err := table1Graph(m, devs)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Table1Row{Model: m, Devices: devs, Outcomes: map[System]Outcome{}})
			for _, sys := range systems {
				jobs = append(jobs, Job{System: sys, Graph: g, Devices: devs, MiniBatch: mb})
			}
		}
	}
	for i, o := range RunGrid(jobs) {
		res.Rows[i/len(systems)].Outcomes[o.System] = o
	}
	return res, nil
}

// CSV renders the table as (model, devices, per-system seconds, ratios to
// GraphPipe) — the layout of Table 1.
func (r *Table1Result) CSV(systems []System) *trace.CSV {
	header := []string{"model", "devices"}
	for _, s := range systems {
		header = append(header, string(s)+"_seconds")
	}
	for _, s := range systems {
		if s != GraphPipe {
			header = append(header, string(s)+"_over_graphpipe")
		}
	}
	c := trace.NewCSV(header...)
	for _, row := range r.Rows {
		vals := []interface{}{row.Model, row.Devices}
		for _, s := range systems {
			vals = append(vals, FmtSearch(row.Outcomes[s]))
		}
		gp := row.Outcomes[GraphPipe]
		for _, s := range systems {
			if s == GraphPipe {
				continue
			}
			o := row.Outcomes[s]
			if !o.Failed && !gp.Failed && gp.SearchTime > 0 {
				vals = append(vals, fmt.Sprintf("%.1f", o.SearchTime.Seconds()/gp.SearchTime.Seconds()))
			} else {
				vals = append(vals, "-")
			}
		}
		c.Add(vals...)
	}
	return c
}
