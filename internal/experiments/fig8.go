package experiments

import (
	"fmt"
	"strings"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/models"
	"graphpipe/internal/planner"
	"graphpipe/internal/trace"
)

// CaseStudyResult captures the §7.5 / Figure 8 analysis: GraphPipe versus
// SPP on the synthetic two-branch Transformer of Figure 10, eight devices.
type CaseStudyResult struct {
	GraphPipe Outcome
	SPP       Outcome
	// Depths and micro-batch sizes chosen by each system (the paper: 4 vs
	// 8 and 4 vs 2).
	GPDepth, SPPDepth           int
	GPMicroBatch, SPPMicroBatch int
	// Speedup is GraphPipe/SPP throughput (the paper reports ≈1.2×).
	Speedup float64
	// ParallelOnlySpeedup isolates the depth effect: GraphPipe restricted
	// to SPP's micro-batch size (the paper attributes ≈10% to each gain
	// source).
	ParallelOnlySpeedup float64
	// Gantts are the rendered pipeline schedules (Figure 8's two panels).
	GanttGPP, GanttSPP string
}

// CaseStudy regenerates the case study: both planners on the Figure 10
// model with 8 devices.
func CaseStudy(miniBatch int) (*CaseStudyResult, error) {
	if miniBatch == 0 {
		miniBatch = 64
	}
	g := models.CaseStudy(models.DefaultCaseStudyConfig())
	const devices = 8
	outs := RunGrid([]Job{
		{System: GraphPipe, Graph: g, Devices: devices, MiniBatch: miniBatch},
		{System: PipeDream, Graph: g, Devices: devices, MiniBatch: miniBatch},
	})
	res := &CaseStudyResult{GraphPipe: outs[0], SPP: outs[1]}
	if res.GraphPipe.Failed || res.SPP.Failed {
		return nil, fmt.Errorf("experiments: case study failed: gp=%v spp=%v",
			res.GraphPipe.Err, res.SPP.Err)
	}
	res.GPDepth = res.GraphPipe.Depth
	res.SPPDepth = res.SPP.Depth
	res.GPMicroBatch = res.GraphPipe.MicroBatch
	res.SPPMicroBatch = res.SPP.MicroBatch
	res.Speedup = res.GraphPipe.Throughput / res.SPP.Throughput

	// Ablated arm: GraphPipe at SPP's micro-batch size isolates the
	// concurrent-branch (depth) gain from the micro-batch (compute
	// efficiency) gain.
	parallel := Run(GraphPipe, g, devices, miniBatch, RunOptions{ForcedMicroBatch: res.SPPMicroBatch})
	if !parallel.Failed {
		res.ParallelOnlySpeedup = parallel.Throughput / res.SPP.Throughput
	}

	// Render the two schedules (Figure 8's panels), re-planning through
	// the planner registry and replaying through the evaluator registry to
	// recover the strategy objects the grid discards.
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)
	ev, err := eval.Get("sim")
	if err != nil {
		return nil, err
	}
	gantt := func(name string) string {
		pl, err := planner.Get(name)
		if err != nil {
			return ""
		}
		st, _, err := pl.Plan(g, topo, miniBatch, planner.Options{CostModel: model})
		if err != nil {
			return ""
		}
		out, err := ev.Evaluate(g, topo, st, eval.Options{CostModel: model})
		if err != nil {
			return ""
		}
		return trace.Summary(st, out) + "\n" + trace.Gantt(st, out, 96)
	}
	res.GanttGPP = gantt(string(GraphPipe))
	res.GanttSPP = gantt(string(PipeDream))
	return res, nil
}

// Report renders the case study in the paper's terms.
func (r *CaseStudyResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Case study (Figure 8 / §7.5): two-branch Transformer, 8 devices\n")
	fmt.Fprintf(&sb, "  pipeline depth:    GraphPipe %d vs SPP %d\n", r.GPDepth, r.SPPDepth)
	fmt.Fprintf(&sb, "  micro-batch size:  GraphPipe %d vs SPP %d\n", r.GPMicroBatch, r.SPPMicroBatch)
	fmt.Fprintf(&sb, "  throughput:        GraphPipe %.0f vs SPP %.0f samples/s (%.2fx)\n",
		r.GraphPipe.Throughput, r.SPP.Throughput, r.Speedup)
	fmt.Fprintf(&sb, "  parallel-only arm: %.2fx (depth effect alone)\n", r.ParallelOnlySpeedup)
	if r.GanttSPP != "" {
		fmt.Fprintf(&sb, "\nSPP schedule:\n%s", r.GanttSPP)
	}
	if r.GanttGPP != "" {
		fmt.Fprintf(&sb, "\nGraphPipe schedule:\n%s", r.GanttGPP)
	}
	return sb.String()
}
