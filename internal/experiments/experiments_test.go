package experiments

import (
	"strings"
	"testing"

	"graphpipe/internal/models"
)

// TestRunAllSystemsSmall exercises the harness end to end on a small model.
func TestRunAllSystemsSmall(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 3
	g := models.MMT(cfg)
	for _, sys := range Systems {
		o := Run(sys, g, 4, 16, RunOptions{})
		if o.Failed {
			t.Errorf("%s failed: %v", sys, o.Err)
			continue
		}
		if o.Throughput <= 0 || o.SearchTime <= 0 {
			t.Errorf("%s outcome incomplete: %+v", sys, o)
		}
		if o.Stages < 1 || o.Depth < 1 || o.Depth > o.Stages {
			t.Errorf("%s stage stats implausible: %+v", sys, o)
		}
	}
}

func TestRunUnknownSystem(t *testing.T) {
	g := models.SequentialTransformer(4)
	o := Run(System("nope"), g, 2, 8, RunOptions{})
	if !o.Failed {
		t.Error("unknown system did not fail")
	}
}

func TestFormatters(t *testing.T) {
	ok := Outcome{Throughput: 123.4, SearchTime: 1500 * 1e6}
	if FmtThroughput(ok) != "123" {
		t.Errorf("FmtThroughput = %q", FmtThroughput(ok))
	}
	bad := Outcome{Failed: true}
	if FmtThroughput(bad) != "✗" || FmtSearch(bad) != "✗" {
		t.Error("failure formatting wrong")
	}
}

func TestPiperExplosionSurfacesAsFailure(t *testing.T) {
	g := models.DLRM(models.DefaultDLRMConfig())
	o := Run(Piper, g, 4, 64, RunOptions{PiperBudget: 10_000})
	if !o.Failed || !IsExplosion(o) {
		t.Errorf("DLRM should explode Piper: %+v", o)
	}
}

// TestGraphPipeBeatsSPPOnBranches is the reproduction's headline claim at
// the harness level: on a branch-heavy model with enough devices, GraphPipe
// must beat PipeDream, and its pipeline must be shallower.
func TestGraphPipeBeatsSPPOnBranches(t *testing.T) {
	g := models.CANDLEUno(models.DefaultCANDLEUnoConfig())
	gp := Run(GraphPipe, g, 8, 8192, RunOptions{})
	pd := Run(PipeDream, g, 8, 8192, RunOptions{})
	if gp.Failed || pd.Failed {
		t.Fatalf("runs failed: gp=%v pd=%v", gp.Err, pd.Err)
	}
	if gp.Throughput < pd.Throughput {
		t.Errorf("GraphPipe %.0f below PipeDream %.0f on 4-branch model",
			gp.Throughput, pd.Throughput)
	}
	if gp.Depth >= pd.Depth && pd.Depth > 2 {
		t.Errorf("GraphPipe depth %d not below PipeDream %d", gp.Depth, pd.Depth)
	}
}

func TestA3SequentialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Plan only the 4- and 8-device points the assertions read — the full
	// A3Sequential sweep includes 32-device chain DPs that take minutes
	// under the race detector.
	g := models.SequentialTransformer(32)
	for _, devs := range []int{4, 8} {
		mb, err := models.PaperMiniBatch("mmt", devs)
		if err != nil {
			t.Fatal(err)
		}
		outs := RunGrid([]Job{
			{System: PipeDream, Graph: g, Devices: devs, MiniBatch: mb},
			{System: GraphPipe, Graph: g, Devices: devs, MiniBatch: mb},
		})
		pd, gp := outs[0], outs[1]
		if gp.Failed || pd.Failed {
			t.Fatalf("devices=%d failed: %v %v", devs, gp.Err, pd.Err)
		}
		ratio := gp.Throughput / pd.Throughput
		if ratio < 0.9 {
			t.Errorf("devices=%d: GraphPipe %.0f well below PipeDream %.0f on a sequential model",
				devs, gp.Throughput, pd.Throughput)
		}
	}
}

func TestDeviceCountsCopy(t *testing.T) {
	d := DeviceCounts()
	d[0] = 999
	if DeviceCounts()[0] == 999 {
		t.Error("DeviceCounts exposes internal slice")
	}
}

func TestFig6CSVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// A cut-down Fig6-style result over a small model, exercising the CSV
	// path without the full sweep.
	res := &Fig6Result{Model: "test"}
	g := models.SequentialTransformer(8)
	row := Fig6Row{Devices: 4, MiniBatch: 16, Outcomes: map[System]Outcome{}}
	for _, sys := range []System{PipeDream, GraphPipe} {
		row.Outcomes[sys] = Run(sys, g, 4, 16, RunOptions{})
	}
	row.Outcomes[Piper] = Outcome{Failed: true}
	res.Rows = append(res.Rows, row)
	csv := res.CSV(Systems)
	out := csv.String()
	if !strings.Contains(out, "devices,mini_batch,piper_samples_per_s") {
		t.Errorf("csv header wrong: %s", out)
	}
	if !strings.Contains(out, "✗") {
		t.Errorf("csv missing ✗ for failed piper: %s", out)
	}
}

func TestCaseStudyReport(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := CaseStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 0 {
		t.Errorf("speedup = %g", r.Speedup)
	}
	if r.GPDepth > r.SPPDepth {
		t.Errorf("GraphPipe depth %d exceeds SPP depth %d", r.GPDepth, r.SPPDepth)
	}
	rep := r.Report()
	for _, want := range []string{"pipeline depth", "micro-batch size", "throughput"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
