package experiments

import (
	"fmt"
	"time"

	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/synth"
	"graphpipe/internal/trace"
)

// Fig6Row is one device-count point of Figure 6: throughput of the three
// systems on one model.
type Fig6Row struct {
	Devices   int
	MiniBatch int
	Outcomes  map[System]Outcome
}

// Fig6Result holds one sub-figure (6a/6b/6c).
type Fig6Result struct {
	Model string
	Rows  []Fig6Row
}

// buildModel constructs the evaluation model by name.
func buildModel(model string) (*graph.Graph, error) {
	switch model {
	case "mmt":
		return models.MMT(models.DefaultMMTConfig()), nil
	case "dlrm":
		return models.DLRM(models.DefaultDLRMConfig()), nil
	case "candle-uno":
		return models.CANDLEUno(models.DefaultCANDLEUnoConfig()), nil
	default:
		return nil, fmt.Errorf("experiments: unknown model %q", model)
	}
}

// fig6Graph resolves the sub-figure's model: a paper model by name, or
// a generated one for synth: specs — which lets the throughput-sweep
// plumbing run on a tiny synthetic model in the smoke tests instead of
// only on the full paper workloads. The graph is device-independent,
// so Fig6 builds it once for the whole sweep.
func fig6Graph(model string) (*graph.Graph, error) {
	if synth.IsSpec(model) {
		g, _, err := models.Build(model, 0, 1)
		return g, err
	}
	return buildModel(model)
}

// fig6MiniBatch resolves one device count's mini-batch: the paper's
// Appendix A.2 pairing for the paper models, the proportional default
// for synth specs.
func fig6MiniBatch(model string, devs int) (int, error) {
	if synth.IsSpec(model) {
		return synth.DefaultMiniBatch(devs), nil
	}
	return models.PaperMiniBatch(model, devs)
}

// Fig6 regenerates one sub-figure of Figure 6: end-to-end training
// throughput versus device count, with the paper's per-device-count
// mini-batch sizes (Appendix A.2). Piper's ✗ entries surface as Failed
// outcomes, matching the paper's missing data points.
func Fig6(model string, systems []System) (*Fig6Result, error) {
	g, err := fig6Graph(model)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Model: model}
	var jobs []Job
	for _, devs := range DeviceCounts() {
		mb, err := fig6MiniBatch(model, devs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{Devices: devs, MiniBatch: mb, Outcomes: map[System]Outcome{}})
		for _, sys := range systems {
			// Piper gets a bounded wall-clock budget per point; points it
			// cannot finish print ✗ — the paper's "missing data points
			// indicate that no training strategy can be found within
			// reasonable timeframes".
			jobs = append(jobs, Job{System: sys, Graph: g, Devices: devs, MiniBatch: mb,
				Opts: RunOptions{PiperTimeout: 90 * time.Second}})
		}
	}
	for i, o := range RunGrid(jobs) {
		res.Rows[i/len(systems)].Outcomes[o.System] = o
	}
	return res, nil
}

// CSV renders the sub-figure as (devices, mini-batch, one column per
// system, GraphPipe/PipeDream speedup).
func (r *Fig6Result) CSV(systems []System) *trace.CSV {
	header := []string{"devices", "mini_batch"}
	for _, s := range systems {
		header = append(header, string(s)+"_samples_per_s")
	}
	header = append(header, "graphpipe_over_pipedream")
	c := trace.NewCSV(header...)
	for _, row := range r.Rows {
		vals := []interface{}{row.Devices, row.MiniBatch}
		for _, s := range systems {
			vals = append(vals, FmtThroughput(row.Outcomes[s]))
		}
		gp, pd := row.Outcomes[GraphPipe], row.Outcomes[PipeDream]
		if !gp.Failed && !pd.Failed && pd.Throughput > 0 {
			vals = append(vals, fmt.Sprintf("%.2f", gp.Throughput/pd.Throughput))
		} else {
			vals = append(vals, "-")
		}
		c.Add(vals...)
	}
	return c
}
