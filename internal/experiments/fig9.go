package experiments

import (
	"fmt"
	"graphpipe/internal/models"

	"graphpipe/internal/trace"
)

// Fig9Row is one model's ablation at 32 GPUs: SPP (PipeDream), "Parallel"
// (GraphPipe's graph partitioning restricted to SPP's micro-batch size),
// and full GraphPipe (parallel stages + larger micro-batches).
type Fig9Row struct {
	Model    string
	SPP      Outcome
	Parallel Outcome
	Full     Outcome
	// ParallelSpeedup and FullSpeedup are normalized to SPP (the paper:
	// 1.12–1.40× and 1.25–1.61×).
	ParallelSpeedup float64
	FullSpeedup     float64
}

// Fig9 regenerates the ablation (§7.4) on the three evaluation models at
// 32 GPUs with the paper's mini-batch sizes.
func Fig9() ([]Fig9Row, error) {
	const devices = 32
	var rows []Fig9Row
	for _, m := range []string{"mmt", "dlrm", "candle-uno"} {
		g, err := buildModel(m)
		if err != nil {
			return nil, err
		}
		mb, err := models.PaperMiniBatch(m, devices)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Model: m}
		row.SPP = Run(PipeDream, g, devices, mb, RunOptions{})
		if row.SPP.Failed {
			return nil, fmt.Errorf("experiments: fig9 SPP failed on %s: %v", m, row.SPP.Err)
		}
		// "Parallel": graph pipeline stages, but SPP's micro-batch size —
		// isolates concurrent stage execution from the memory-enabled
		// micro-batch increase. (It is not possible to evaluate the larger
		// micro-batch without the parallel stages, §7.4.)
		row.Parallel = Run(GraphPipe, g, devices, mb, RunOptions{ForcedMicroBatch: row.SPP.MicroBatch})
		row.Full = Run(GraphPipe, g, devices, mb, RunOptions{})
		if !row.Parallel.Failed {
			row.ParallelSpeedup = row.Parallel.Throughput / row.SPP.Throughput
		}
		if !row.Full.Failed {
			row.FullSpeedup = row.Full.Throughput / row.SPP.Throughput
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9CSV renders the ablation.
func Fig9CSV(rows []Fig9Row) *trace.CSV {
	c := trace.NewCSV("model", "spp_samples_per_s", "parallel_samples_per_s",
		"graphpipe_samples_per_s", "parallel_speedup", "graphpipe_speedup")
	for _, r := range rows {
		c.Add(r.Model, FmtThroughput(r.SPP), FmtThroughput(r.Parallel), FmtThroughput(r.Full),
			fmt.Sprintf("%.2f", r.ParallelSpeedup), fmt.Sprintf("%.2f", r.FullSpeedup))
	}
	return c
}
