package experiments

import (
	"fmt"
	"graphpipe/internal/models"

	"graphpipe/internal/trace"
)

// Fig9Row is one model's ablation at 32 GPUs: SPP (PipeDream), "Parallel"
// (GraphPipe's graph partitioning restricted to SPP's micro-batch size),
// and full GraphPipe (parallel stages + larger micro-batches).
type Fig9Row struct {
	Model    string
	SPP      Outcome
	Parallel Outcome
	Full     Outcome
	// ParallelSpeedup and FullSpeedup are normalized to SPP (the paper:
	// 1.12–1.40× and 1.25–1.61×).
	ParallelSpeedup float64
	FullSpeedup     float64
}

// Fig9 regenerates the ablation (§7.4) on the three evaluation models at
// 32 GPUs with the paper's mini-batch sizes. The SPP and full-GraphPipe
// arms of every model run as one grid; the "Parallel" arms follow in a
// second grid because each needs the micro-batch size its SPP arm chose.
func Fig9() ([]Fig9Row, error) {
	const devices = 32
	modelNames := []string{"mmt", "dlrm", "candle-uno"}
	rows := make([]Fig9Row, len(modelNames))
	var jobs []Job
	for i, m := range modelNames {
		g, err := buildModel(m)
		if err != nil {
			return nil, err
		}
		mb, err := models.PaperMiniBatch(m, devices)
		if err != nil {
			return nil, err
		}
		rows[i].Model = m
		jobs = append(jobs,
			Job{System: PipeDream, Graph: g, Devices: devices, MiniBatch: mb},
			Job{System: GraphPipe, Graph: g, Devices: devices, MiniBatch: mb})
	}
	outs := RunGrid(jobs)
	for i := range rows {
		rows[i].SPP = outs[2*i]
		rows[i].Full = outs[2*i+1]
		if rows[i].SPP.Failed {
			return nil, fmt.Errorf("experiments: fig9 SPP failed on %s: %v", rows[i].Model, rows[i].SPP.Err)
		}
	}
	// "Parallel": graph pipeline stages, but SPP's micro-batch size —
	// isolates concurrent stage execution from the memory-enabled
	// micro-batch increase. (It is not possible to evaluate the larger
	// micro-batch without the parallel stages, §7.4.)
	var arms []Job
	for i := range rows {
		arms = append(arms, Job{System: GraphPipe, Graph: jobs[2*i].Graph,
			Devices: devices, MiniBatch: jobs[2*i].MiniBatch,
			Opts: RunOptions{ForcedMicroBatch: rows[i].SPP.MicroBatch}})
	}
	for i, o := range RunGrid(arms) {
		rows[i].Parallel = o
		if !o.Failed {
			rows[i].ParallelSpeedup = o.Throughput / rows[i].SPP.Throughput
		}
		if !rows[i].Full.Failed {
			rows[i].FullSpeedup = rows[i].Full.Throughput / rows[i].SPP.Throughput
		}
	}
	return rows, nil
}

// Fig9CSV renders the ablation.
func Fig9CSV(rows []Fig9Row) *trace.CSV {
	c := trace.NewCSV("model", "spp_samples_per_s", "parallel_samples_per_s",
		"graphpipe_samples_per_s", "parallel_speedup", "graphpipe_speedup")
	for _, r := range rows {
		c.Add(r.Model, FmtThroughput(r.SPP), FmtThroughput(r.Parallel), FmtThroughput(r.Full),
			fmt.Sprintf("%.2f", r.ParallelSpeedup), fmt.Sprintf("%.2f", r.FullSpeedup))
	}
	return c
}
