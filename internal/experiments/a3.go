package experiments

import (
	"graphpipe/internal/models"
	"graphpipe/internal/trace"
)

// A3Row is one device count of the Appendix A.3 parity check on the
// sequential Transformer: with no branches to exploit, GraphPipe must match
// the SPP baselines.
type A3Row struct {
	Devices   int
	MiniBatch int
	Outcomes  map[System]Outcome
}

// A3Sequential regenerates the Appendix A.3 table: throughput of all three
// systems on a 32-layer sequential Transformer with the MMT per-layer
// configuration and the MMT mini-batch scaling.
func A3Sequential(systems []System) ([]A3Row, error) {
	g := models.SequentialTransformer(32)
	var rows []A3Row
	var jobs []Job
	for _, devs := range DeviceCounts() {
		mb, err := models.PaperMiniBatch("mmt", devs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, A3Row{Devices: devs, MiniBatch: mb, Outcomes: map[System]Outcome{}})
		for _, sys := range systems {
			jobs = append(jobs, Job{System: sys, Graph: g, Devices: devs, MiniBatch: mb})
		}
	}
	for i, o := range RunGrid(jobs) {
		rows[i/len(systems)].Outcomes[o.System] = o
	}
	return rows, nil
}

// A3CSV renders the parity table.
func A3CSV(rows []A3Row, systems []System) *trace.CSV {
	header := []string{"devices", "mini_batch"}
	for _, s := range systems {
		header = append(header, string(s)+"_samples_per_s")
	}
	c := trace.NewCSV(header...)
	for _, row := range rows {
		vals := []interface{}{row.Devices, row.MiniBatch}
		for _, s := range systems {
			vals = append(vals, FmtThroughput(row.Outcomes[s]))
		}
		c.Add(vals...)
	}
	return c
}
