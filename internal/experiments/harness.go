// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): end-to-end throughput (Figure 6), search times
// (Table 1), branch-count and micro-batch sweeps (Figure 7), the case study
// (Figure 8, §7.5), the ablation (Figure 9), and the sequential-model
// parity check (Appendix A.3). Each driver returns typed rows plus
// trace.CSV tables that cmd/experiments prints and EXPERIMENTS.md records.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"graphpipe/internal/baselines/pipedream"
	"graphpipe/internal/baselines/piper"
	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/sim"
	"graphpipe/internal/strategy"
)

// System identifies a planner.
type System string

// The three systems the paper compares.
const (
	GraphPipe System = "graphpipe"
	PipeDream System = "pipedream"
	Piper     System = "piper"
)

// Systems lists the paper's comparison order.
var Systems = []System{Piper, PipeDream, GraphPipe}

// Outcome is one (system, model, devices) measurement.
type Outcome struct {
	System     System
	Model      string
	Devices    int
	MiniBatch  int
	SearchTime time.Duration
	// Throughput is simulated samples/second — the y-axis of Figure 6.
	Throughput float64
	// IterationTime is the simulated per-iteration wall time.
	IterationTime float64
	Stages        int
	Depth         int
	// MicroBatch is the (uniform) micro-batch size the planner chose.
	MicroBatch int
	// PeakMemory is the worst per-device memory across stages.
	PeakMemory float64
	// Failed marks the paper's ✗: the planner could not produce a
	// strategy within its budget.
	Failed bool
	Err    error
}

// RunOptions adjusts a single planner invocation.
type RunOptions struct {
	// ForcedMicroBatch fixes the micro-batch size for every system
	// (Figure 7 right, Figure 9's "Parallel" arm).
	ForcedMicroBatch int
	// PiperBudget overrides the Piper state budget.
	PiperBudget int
	// PiperTimeout overrides the Piper wall-clock bound.
	PiperTimeout time.Duration
}

// Run plans with the chosen system and simulates one training iteration,
// returning the full outcome. A Failed outcome (rather than an error) is
// returned when the planner cannot produce a strategy — the ✗ / missing
// data points of the paper.
func Run(sys System, g *graph.Graph, devices, miniBatch int, opts RunOptions) Outcome {
	out := Outcome{System: sys, Model: g.Name(), Devices: devices, MiniBatch: miniBatch}
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)

	var st *strategy.Strategy
	start := time.Now()
	switch sys {
	case GraphPipe:
		p, err := core.NewPlanner(g, model, core.Options{ForcedMicroBatch: opts.ForcedMicroBatch})
		if err == nil {
			var r *core.Result
			r, err = p.Plan(miniBatch)
			if err == nil {
				st = r.Strategy
			}
		}
		out.Err = err
	case PipeDream:
		r, err := pipedream.NewPlanner(g, model, pipedream.Options{
			ForcedMicroBatch: opts.ForcedMicroBatch,
		}).Plan(miniBatch)
		if err == nil {
			st = r.Strategy
		}
		out.Err = err
	case Piper:
		r, err := piper.NewPlanner(g, model, piper.Options{
			ForcedMicroBatch: opts.ForcedMicroBatch,
			StateBudget:      opts.PiperBudget,
			Timeout:          opts.PiperTimeout,
		}).Plan(miniBatch)
		if err == nil {
			st = r.Strategy
		}
		out.Err = err
	default:
		out.Err = fmt.Errorf("experiments: unknown system %q", sys)
	}
	out.SearchTime = time.Since(start)
	if out.Err != nil || st == nil {
		out.Failed = true
		return out
	}

	res, err := sim.New(g, model).Run(st)
	if err != nil {
		out.Err = err
		out.Failed = true
		return out
	}
	out.Throughput = res.Throughput
	out.IterationTime = res.IterationTime
	out.Stages = st.NumStages()
	out.Depth = st.Depth()
	out.MicroBatch = st.Stages[0].Config.MicroBatch
	for _, ss := range res.Stages {
		if ss.PeakMemory > out.PeakMemory {
			out.PeakMemory = ss.PeakMemory
		}
	}
	return out
}

// IsExplosion reports whether an outcome failed because of Piper's
// exponential state space (as opposed to memory infeasibility).
func IsExplosion(o Outcome) bool {
	return o.Failed && errors.Is(o.Err, piper.ErrSearchExplosion)
}

// FmtThroughput renders a throughput cell, with ✗ for failures.
func FmtThroughput(o Outcome) string {
	if o.Failed {
		return "✗"
	}
	return fmt.Sprintf("%.0f", o.Throughput)
}

// FmtSearch renders a search-time cell in seconds, with ✗ for failures.
func FmtSearch(o Outcome) string {
	if o.Failed {
		return "✗"
	}
	return fmt.Sprintf("%.3f", o.SearchTime.Seconds())
}

// deviceCounts is the paper's GPU sweep.
var deviceCounts = []int{4, 8, 16, 32}

// DeviceCounts returns the paper's evaluation device counts (4–32 GPUs).
func DeviceCounts() []int { return append([]int(nil), deviceCounts...) }
