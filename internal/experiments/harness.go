// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): end-to-end throughput (Figure 6), search times
// (Table 1), branch-count and micro-batch sweeps (Figure 7), the case study
// (Figure 8, §7.5), the ablation (Figure 9), and the sequential-model
// parity check (Appendix A.3). Each driver returns typed rows plus
// trace.CSV tables that cmd/experiments prints and EXPERIMENTS.md records.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"graphpipe/internal/baselines/piper"
	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/planner"

	_ "graphpipe/internal/eval/all"    // register the built-in backends
	_ "graphpipe/internal/planner/all" // register the built-in planners
)

// System identifies a planner.
type System string

// The three systems the paper compares.
const (
	GraphPipe System = "graphpipe"
	PipeDream System = "pipedream"
	Piper     System = "piper"
)

// Systems lists the paper's comparison order.
var Systems = []System{Piper, PipeDream, GraphPipe}

// Outcome is one (system, model, devices) measurement.
type Outcome struct {
	System System
	Model  string
	// Backend names the evaluation backend that produced the measurement
	// ("sim" unless overridden).
	Backend    string
	Devices    int
	MiniBatch  int
	SearchTime time.Duration
	// Throughput is simulated samples/second — the y-axis of Figure 6.
	Throughput float64
	// IterationTime is the simulated per-iteration wall time.
	IterationTime float64
	Stages        int
	Depth         int
	// MicroBatch is the (uniform) micro-batch size the planner chose.
	MicroBatch int
	// PeakMemory is the worst per-device memory across stages.
	PeakMemory float64
	// Failed marks the paper's ✗: the planner could not produce a
	// strategy within its budget.
	Failed bool
	Err    error
}

// RunOptions adjusts a single planner invocation.
type RunOptions struct {
	// Backend selects the evaluation backend from the eval registry
	// (default "sim"). Every measurement is reproducible on any backend:
	// the parity tests pin that the backends agree.
	Backend string
	// ForcedMicroBatch fixes the micro-batch size for every system
	// (Figure 7 right, Figure 9's "Parallel" arm).
	ForcedMicroBatch int
	// DisableSinkAnchoredSplits removes GraphPipe's merge-anchored
	// partitions (§7.5) for the ablation benchmarks.
	DisableSinkAnchoredSplits bool
	// Workers bounds the planner's internal worker pool (0: planner
	// default of one per CPU). RunGrid forces unset values to 1 so a
	// grid already one-job-per-CPU wide does not nest a second
	// CPU-wide pool inside every job.
	Workers int
	// PiperBudget overrides the Piper state budget.
	PiperBudget int
	// PiperTimeout overrides the Piper wall-clock bound.
	PiperTimeout time.Duration
}

// plannerOptions maps harness options onto the shared planner options.
func (o RunOptions) plannerOptions() planner.Options {
	return planner.Options{
		ForcedMicroBatch:          o.ForcedMicroBatch,
		DisableSinkAnchoredSplits: o.DisableSinkAnchoredSplits,
		Workers:                   o.Workers,
		StateBudget:               o.PiperBudget,
		Timeout:                   o.PiperTimeout,
	}
}

// Run resolves the system through the planner registry and the evaluation
// backend through the eval registry, plans, and evaluates one training
// iteration, returning the full outcome. A Failed outcome (rather than an
// error) is returned when the planner cannot produce a strategy — the ✗ /
// missing data points of the paper.
func Run(sys System, g *graph.Graph, devices, miniBatch int, opts RunOptions) Outcome {
	backend := opts.Backend
	if backend == "" {
		backend = "sim"
	}
	out := Outcome{System: sys, Model: g.Name(), Backend: backend, Devices: devices, MiniBatch: miniBatch}
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)

	// An unknown backend is a harness-configuration bug, not a data point:
	// a Failed outcome would render as the paper's ✗ (planner could not
	// produce a strategy) across the whole grid. Fail loudly instead, like
	// the registries do on bad registrations.
	ev, err := eval.Get(backend)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	pl, err := planner.Get(string(sys))
	if err != nil {
		out.Err = err
		out.Failed = true
		return out
	}
	popts := opts.plannerOptions()
	popts.CostModel = model
	start := time.Now()
	st, _, err := pl.Plan(g, topo, miniBatch, popts)
	out.SearchTime = time.Since(start)
	if err != nil {
		out.Err = err
		out.Failed = true
		return out
	}

	rep, err := ev.Evaluate(g, topo, st, eval.Options{CostModel: model})
	if err != nil {
		out.Err = err
		out.Failed = true
		return out
	}
	out.Throughput = rep.Throughput
	out.IterationTime = rep.IterationTime
	out.Stages = st.NumStages()
	out.Depth = st.Depth()
	out.MicroBatch = st.Stages[0].Config.MicroBatch
	out.PeakMemory = rep.PeakMemory()
	return out
}

// Job is one cell of an experiment grid: a planner on a model at a device
// count.
type Job struct {
	System    System
	Graph     *graph.Graph
	Devices   int
	MiniBatch int
	Opts      RunOptions
}

// RunGrid fans a (model × planner × device-count) grid out across
// goroutines, bounded by one worker per available CPU, and returns the
// outcomes in job order — result ordering is deterministic regardless of
// which job finishes first, so CSV rows never shuffle between runs.
//
// Jobs that do not pin Opts.Workers plan single-threaded: the grid itself
// saturates the CPUs, and nesting a CPU-wide pool inside every cell would
// oversubscribe the machine quadratically. This also keeps per-cell
// SearchTime measurements comparable across systems — every planner runs
// one cell on one worker. Wall-clock-budgeted cells (Piper's timeout)
// still share the machine with sibling cells, so regenerated ✗ entries
// reflect grid load, not a quiet machine.
func RunGrid(jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	run := func(i int) {
		j := jobs[i]
		if j.Opts.Workers == 0 {
			j.Opts.Workers = 1
		}
		out[i] = Run(j.System, j.Graph, j.Devices, j.MiniBatch, j.Opts)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// IsExplosion reports whether an outcome failed because of Piper's
// exponential state space (as opposed to memory infeasibility).
func IsExplosion(o Outcome) bool {
	return o.Failed && errors.Is(o.Err, piper.ErrSearchExplosion)
}

// FmtThroughput renders a throughput cell, with ✗ for failures.
func FmtThroughput(o Outcome) string {
	if o.Failed {
		return "✗"
	}
	return fmt.Sprintf("%.0f", o.Throughput)
}

// FmtSearch renders a search-time cell in seconds, with ✗ for failures.
func FmtSearch(o Outcome) string {
	if o.Failed {
		return "✗"
	}
	return fmt.Sprintf("%.3f", o.SearchTime.Seconds())
}

// deviceCounts is the paper's GPU sweep.
var deviceCounts = []int{4, 8, 16, 32}

// DeviceCounts returns the paper's evaluation device counts (4–32 GPUs).
func DeviceCounts() []int { return append([]int(nil), deviceCounts...) }
