// Package profile implements the measurement step of GraphPipe's base case
// (§5): "We estimate TPS by profiling the execution time of each operator
// while extrapolating communication latency by affine functions."
//
// On the paper's testbed the profiler times CUDA kernels; here it times the
// execution substrate we have — the cost model's operator implementations —
// at a small set of sampled micro-batch sizes, then serves arbitrary sizes
// by interpolation. Communication is profiled by sampling transfer times at
// several message sizes and fitting the affine model
//
//	time(bytes) = α + β·bytes            (least squares)
//
// exactly as the paper describes. The profiled tables can be persisted as
// JSON and reloaded, so a planner run does not need to re-measure.
package profile

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
)

// OpProfile holds the measured forward/backward times of one operator at
// sampled per-device batch sizes, ascending.
type OpProfile struct {
	Op      graph.NodeID `json:"op"`
	Name    string       `json:"name"`
	Batches []int        `json:"batches"`
	Fwd     []float64    `json:"fwd_seconds"`
	Bwd     []float64    `json:"bwd_seconds"`
}

// AffineLink is the fitted communication model time(bytes) = Alpha +
// Beta·bytes for one link class.
type AffineLink struct {
	Alpha float64 `json:"alpha_seconds"`
	Beta  float64 `json:"beta_seconds_per_byte"`
}

// Profile is a full measurement of one model on one device class.
type Profile struct {
	Model     string      `json:"model"`
	Ops       []OpProfile `json:"ops"`
	IntraNode AffineLink  `json:"intra_node"`
	InterNode AffineLink  `json:"inter_node"`
}

// DefaultBatchSamples are the per-device micro-batch sizes the profiler
// measures; everything else is interpolated.
var DefaultBatchSamples = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Run profiles every operator of g against the cost model's device 0 and
// fits the communication links from sampled transfer sizes.
func Run(g *graph.Graph, model costmodel.Model) *Profile {
	topo := model.Topology()
	dev := topo.Device(0)
	p := &Profile{Model: g.Name()}
	for _, op := range g.Ops() {
		prof := OpProfile{Op: op.ID, Name: op.Name}
		for _, b := range DefaultBatchSamples {
			prof.Batches = append(prof.Batches, b)
			prof.Fwd = append(prof.Fwd, model.OpForwardTime(op, float64(b), dev))
			prof.Bwd = append(prof.Bwd, model.OpBackwardTime(op, float64(b), dev))
		}
		p.Ops = append(p.Ops, prof)
	}
	sizes := []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	p.IntraNode = fitAffine(sizes, transferTimes(topo, sizes, topo.IntraNodeBandwidth))
	p.InterNode = fitAffine(sizes, transferTimes(topo, sizes, topo.InterNodeBandwidth))
	return p
}

func transferTimes(topo *cluster.Topology, sizes []float64, bw float64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = topo.LinkLatency + s/bw
	}
	return out
}

// fitAffine runs ordinary least squares on (x, y).
func fitAffine(x, y []float64) AffineLink {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return AffineLink{}
	}
	beta := (n*sxy - sx*sy) / den
	alpha := (sy - beta*sx) / n
	return AffineLink{Alpha: alpha, Beta: beta}
}

// TransferTime evaluates the fitted affine communication model.
func (l AffineLink) TransferTime(bytes float64) float64 {
	t := l.Alpha + l.Beta*bytes
	if t < 0 {
		return 0
	}
	return t
}

// opByID returns the profile row for the operator, or nil.
func (p *Profile) opByID(id graph.NodeID) *OpProfile {
	for i := range p.Ops {
		if p.Ops[i].Op == id {
			return &p.Ops[i]
		}
	}
	return nil
}

// interp linearly interpolates the measured times at perDeviceBatch;
// outside the sampled range it extrapolates from the nearest segment
// (per-sample time is nearly flat at the top of the range, so this is
// benign).
func interp(batches []int, times []float64, b float64) float64 {
	if len(batches) == 0 {
		return 0
	}
	if b <= float64(batches[0]) {
		// Scale the smallest sample proportionally: fixed overhead
		// dominates tiny batches, so clamp instead of extrapolating to 0.
		return times[0] * math.Max(b/float64(batches[0]), 0)
	}
	i := sort.Search(len(batches), func(i int) bool { return float64(batches[i]) >= b })
	if i == len(batches) {
		// Extrapolate from the last segment's slope.
		n := len(batches)
		slope := (times[n-1] - times[n-2]) / float64(batches[n-1]-batches[n-2])
		return times[n-1] + slope*(b-float64(batches[n-1]))
	}
	lo, hi := batches[i-1], batches[i]
	frac := (b - float64(lo)) / float64(hi-lo)
	return times[i-1] + frac*(times[i]-times[i-1])
}

// ForwardTime returns the interpolated forward time of op at perDeviceBatch
// samples.
func (p *Profile) ForwardTime(op graph.NodeID, perDeviceBatch float64) (float64, error) {
	prof := p.opByID(op)
	if prof == nil {
		return 0, fmt.Errorf("profile: no measurements for op %d", op)
	}
	return interp(prof.Batches, prof.Fwd, perDeviceBatch), nil
}

// BackwardTime returns the interpolated backward time of op.
func (p *Profile) BackwardTime(op graph.NodeID, perDeviceBatch float64) (float64, error) {
	prof := p.opByID(op)
	if prof == nil {
		return 0, fmt.Errorf("profile: no measurements for op %d", op)
	}
	return interp(prof.Batches, prof.Bwd, perDeviceBatch), nil
}

// Marshal persists the profile as JSON.
func (p *Profile) Marshal() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// Load parses a persisted profile.
func Load(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return &p, nil
}
