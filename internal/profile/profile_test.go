package profile

import (
	"math"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
)

func profiled(t testing.TB) (*Profile, costmodel.Model) {
	t.Helper()
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	return Run(g, m), m
}

func TestRunCoversAllOps(t *testing.T) {
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	p := Run(g, m)
	if len(p.Ops) != g.Len() {
		t.Fatalf("profiled %d ops, want %d", len(p.Ops), g.Len())
	}
	for _, op := range p.Ops {
		if len(op.Batches) != len(DefaultBatchSamples) {
			t.Errorf("op %s: %d samples", op.Name, len(op.Batches))
		}
		for i := 1; i < len(op.Fwd); i++ {
			if op.Fwd[i] < op.Fwd[i-1] {
				t.Errorf("op %s: forward time not monotone in batch", op.Name)
			}
		}
	}
}

func TestInterpolationMatchesMeasuredPoints(t *testing.T) {
	p, m := profiled(t)
	g := models.SequentialTransformer(4)
	dev := m.Topology().Device(0)
	for _, opProf := range p.Ops {
		op := g.Op(opProf.Op)
		for _, b := range []int{1, 4, 64} {
			got, err := p.ForwardTime(opProf.Op, float64(b))
			if err != nil {
				t.Fatal(err)
			}
			want := m.OpForwardTime(op, float64(b), dev)
			if math.Abs(got-want) > 1e-15+1e-9*want {
				t.Errorf("%s b=%d: interp %g, measured %g", opProf.Name, b, got, want)
			}
		}
	}
}

func TestInterpolationBetweenPoints(t *testing.T) {
	p, m := profiled(t)
	g := models.SequentialTransformer(4)
	dev := m.Topology().Device(0)
	op := g.Op(1)
	// b=3 is between samples 2 and 4; interpolation must land between the
	// endpoints and near the true value.
	got, err := p.ForwardTime(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo := m.OpForwardTime(op, 2, dev)
	hi := m.OpForwardTime(op, 4, dev)
	if got < lo || got > hi {
		t.Errorf("interp %g outside [%g, %g]", got, lo, hi)
	}
	truth := m.OpForwardTime(op, 3, dev)
	if math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("interp %g vs truth %g: >5%% error", got, truth)
	}
}

func TestExtrapolationAboveRange(t *testing.T) {
	p, m := profiled(t)
	g := models.SequentialTransformer(4)
	dev := m.Topology().Device(0)
	op := g.Op(1)
	got, err := p.ForwardTime(1, 512)
	if err != nil {
		t.Fatal(err)
	}
	truth := m.OpForwardTime(op, 512, dev)
	if math.Abs(got-truth)/truth > 0.05 {
		t.Errorf("extrapolation at b=512: %g vs %g", got, truth)
	}
	// Backward too.
	gotB, err := p.BackwardTime(1, 512)
	if err != nil {
		t.Fatal(err)
	}
	truthB := m.OpBackwardTime(op, 512, dev)
	if math.Abs(gotB-truthB)/truthB > 0.05 {
		t.Errorf("backward extrapolation: %g vs %g", gotB, truthB)
	}
}

func TestUnknownOp(t *testing.T) {
	p, _ := profiled(t)
	if _, err := p.ForwardTime(999, 4); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := p.BackwardTime(999, 4); err == nil {
		t.Error("unknown op accepted (backward)")
	}
}

func TestAffineCommFit(t *testing.T) {
	p, m := profiled(t)
	topo := m.Topology()
	// The generating model is exactly affine, so the fit must recover
	// alpha = link latency and beta = 1/bandwidth.
	if rel := math.Abs(p.IntraNode.Alpha-topo.LinkLatency) / topo.LinkLatency; rel > 1e-6 {
		t.Errorf("intra alpha = %g, want %g", p.IntraNode.Alpha, topo.LinkLatency)
	}
	if rel := math.Abs(p.IntraNode.Beta-1/topo.IntraNodeBandwidth) * topo.IntraNodeBandwidth; rel > 1e-6 {
		t.Errorf("intra beta = %g, want %g", p.IntraNode.Beta, 1/topo.IntraNodeBandwidth)
	}
	if p.InterNode.Beta <= p.IntraNode.Beta {
		t.Error("inter-node bytes must be slower than intra-node")
	}
	// Evaluation clamps to non-negative.
	if p.IntraNode.TransferTime(1e6) <= 0 {
		t.Error("transfer time not positive")
	}
	if (AffineLink{Alpha: -1, Beta: 0}).TransferTime(10) != 0 {
		t.Error("negative prediction not clamped")
	}
}

func TestFitAffineDegenerate(t *testing.T) {
	// All-equal x: the fit must not divide by zero.
	l := fitAffine([]float64{5, 5, 5}, []float64{1, 2, 3})
	if l.Alpha != 0 || l.Beta != 0 {
		t.Errorf("degenerate fit = %+v, want zero", l)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p, _ := profiled(t)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != p.Model || len(back.Ops) != len(p.Ops) {
		t.Fatalf("round trip lost data")
	}
	a, _ := p.ForwardTime(1, 7)
	b, _ := back.ForwardTime(1, 7)
	if a != b {
		t.Errorf("round trip changed interpolation: %g vs %g", a, b)
	}
	if _, err := Load([]byte("{broken")); err == nil {
		t.Error("accepted broken JSON")
	}
}
