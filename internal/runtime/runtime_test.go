package runtime

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
	"graphpipe/internal/schedule"
	"graphpipe/internal/sim"
	"graphpipe/internal/strategy"
)

// planned returns a GraphPipe strategy for the model plus the shared cost
// model.
func planned(t testing.TB, g *graph.Graph, devices, mini int) (*strategy.Strategy, costmodel.Model) {
	t.Helper()
	topo := cluster.NewSummitTopology(devices)
	m := costmodel.NewDefault(topo)
	p, err := core.NewPlanner(g, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan(mini)
	if err != nil {
		t.Fatal(err)
	}
	return r.Strategy, m
}

func TestRuntimeMatchesSimulatorChain(t *testing.T) {
	g := models.SequentialTransformer(8)
	st, m := planned(t, g, 4, 32)
	simRes, err := sim.New(g, m).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	rtRes, err := New(g, m, Options{}).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rtRes.IterationTime-simRes.IterationTime) / simRes.IterationTime; rel > 1e-9 {
		t.Errorf("runtime %.9g vs sim %.9g (rel %.2g): implementations disagree",
			rtRes.IterationTime, simRes.IterationTime, rel)
	}
}

func TestRuntimeMatchesSimulatorBranches(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 4
	g := models.MMT(cfg)
	st, m := planned(t, g, 8, 32)
	simRes, err := sim.New(g, m).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	rtRes, err := New(g, m, Options{}).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rtRes.IterationTime-simRes.IterationTime) / simRes.IterationTime; rel > 1e-9 {
		t.Errorf("runtime %.9g vs sim %.9g on branches", rtRes.IterationTime, simRes.IterationTime)
	}
	if rtRes.MessagesSent == 0 {
		t.Error("no messages exchanged on a multi-stage pipeline")
	}
}

func TestRuntimeDeterministic(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 2
	g := models.MMT(cfg)
	st, m := planned(t, g, 4, 16)
	rt := New(g, m, Options{})
	first, err := rt.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := rt.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		if res.IterationTime != first.IterationTime {
			t.Fatalf("run %d: %.12g != %.12g — virtual clocks must be schedule-determined",
				i, res.IterationTime, first.IterationTime)
		}
	}
}

func TestRuntimeDetectsDeadlock(t *testing.T) {
	// Hand-build a strategy whose stage-1 schedule demands gradients that
	// stage 2 will never send first: swap stage 1's cool-down so a
	// backward precedes its forward... that violates C4 and Validate
	// catches it. Instead, create a real cross-stage deadlock: two stages
	// with artificial mutual dependencies via extra edges would be cyclic
	// (also rejected). The honest reachable case: a stage whose in-flight
	// window is too small for the pipeline depth, forcing it to wait for a
	// gradient that cannot arrive until it sends more forwards.
	b := graph.NewBuilder("deadlock")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 8})
	l1 := b.AddOp(graph.Op{Name: "l1", Kind: graph.OpLinear, FwdFLOPs: 1e6, OutputBytes: 8})
	l2 := b.AddOp(graph.Op{Name: "l2", Kind: graph.OpLinear, FwdFLOPs: 1e6, OutputBytes: 8})
	b.Chain(in, l1, l2)
	g := b.MustBuild()
	topo := cluster.NewSummitTopology(2)
	m := costmodel.NewDefault(topo)

	mini := 8
	cfg := schedule.Config{MicroBatch: 1, K: 1}
	// Stage 0 runs a 1-in-flight schedule (F0 B0 F1 B1...) but stage 1
	// needs F0..F1 before B0 can come back: stage 0 blocks forever on B0's
	// gradient after F0.
	tasks0, err := schedule.BuildTasks(cfg, mini, 1)
	if err != nil {
		t.Fatal(err)
	}
	tasks1, err := schedule.BuildTasks(cfg, mini, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Force stage 1 to need two forwards before its first backward by
	// giving it a 2-warm-up schedule; stage 0's 1-in-flight schedule can
	// only supply one. (Stage 1's B0 waits on F1 from stage 0; stage 0's
	// next task after F0 is B0, waiting on stage 1's B0.)
	st := &strategy.Strategy{
		Planner:   "deadlock-test",
		MiniBatch: mini,
		Stages: []strategy.Stage{
			{ID: 0, Ops: graph.NodeSetOf(in, l1), Config: cfg,
				Devices: []cluster.DeviceID{0}, InFlightSamples: 1, Tasks: tasks0},
			{ID: 1, Ops: graph.NodeSetOf(l2), Config: cfg,
				Devices: []cluster.DeviceID{1}, InFlightSamples: 2, Tasks: tasks1},
		},
	}
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	// Make stage 1's warm-up require two forwards by rewriting its task
	// order: F0 F1 B0 ... — BuildTasks(…, 2) already does this.
	rt := New(g, m, Options{Timeout: 300 * time.Millisecond})
	_, err = rt.Run(st)
	if err == nil {
		t.Fatal("deadlocked schedule executed successfully")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The timeout must surface as a structured diagnosis naming the stuck
	// stage and the dependencies that never arrived — not a bare timeout.
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("error is not a *DeadlockError: %#v", err)
	}
	if derr.What != "activations" && derr.What != "gradients" {
		t.Fatalf("DeadlockError.What = %q", derr.What)
	}
	if len(derr.Pending) == 0 {
		t.Fatal("DeadlockError names no pending dependencies")
	}
	// Whichever stage's timeout fires first, the pending dependency must
	// name the other stage and a sample range inside the blocked task.
	for _, p := range derr.Pending {
		if p.From == derr.Stage {
			t.Fatalf("pending dependency names the stuck stage itself: %+v", p)
		}
		if p.MissingStart >= p.MissingEnd {
			t.Fatalf("empty missing range: %+v", p)
		}
		if p.MissingStart < derr.Task.Start || p.MissingEnd > derr.Task.End {
			t.Fatalf("missing range %+v outside blocked task [%d,%d)",
				p, derr.Task.Start, derr.Task.End)
		}
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Fatalf("rendered error lacks the dependency diagnosis: %v", err)
	}
}

func TestRuntimeRejectsInvalidStrategy(t *testing.T) {
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(2)
	m := costmodel.NewDefault(topo)
	st := &strategy.Strategy{Planner: "bad", MiniBatch: 8}
	if _, err := New(g, m, Options{}).Run(st); err == nil {
		t.Error("accepted empty strategy")
	}
}

func TestMessageCountsMatchSchedule(t *testing.T) {
	g := models.SequentialTransformer(8)
	st, m := planned(t, g, 4, 32)
	res, err := New(g, m, Options{}).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	// Every forward of a non-sink stage sends one activation per
	// successor; every backward of a non-source stage sends one gradient
	// per predecessor.
	want := 0
	for i := range st.Stages {
		n := st.MiniBatch / st.Stages[i].Config.MicroBatch
		want += n * len(st.Succ[i]) // activations
		want += n * len(st.Pred[i]) // gradients
	}
	if res.MessagesSent != want {
		t.Errorf("messages = %d, want %d", res.MessagesSent, want)
	}
}

// TestRuntimeMatchesSimulatorMixedMicroBatch cross-validates the two
// executors on a strategy whose stages use different micro-batch sizes
// (Figure 5's per-stage sizes): the sample-range alignment logic of both
// must agree exactly.
func TestRuntimeMatchesSimulatorMixedMicroBatch(t *testing.T) {
	b := graph.NewBuilder("mixed")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1e4})
	l1 := b.AddOp(graph.Op{Name: "l1", Kind: graph.OpLinear,
		FwdFLOPs: 2e9, ParamBytes: 1e7, ActivationBytes: 1e5, OutputBytes: 1e4})
	l2 := b.AddOp(graph.Op{Name: "l2", Kind: graph.OpLinear,
		FwdFLOPs: 4e9, ParamBytes: 2e7, ActivationBytes: 2e5, OutputBytes: 1e4})
	l3 := b.AddOp(graph.Op{Name: "l3", Kind: graph.OpLinear,
		FwdFLOPs: 8e9, ParamBytes: 4e7, ActivationBytes: 1e5, OutputBytes: 1e3})
	b.Chain(in, l1, l2, l3)
	g := b.MustBuild()

	topo := cluster.NewSummitTopology(3)
	m := costmodel.NewDefault(topo)
	mini := 16
	// Stage micro-batches 1, 2, 4 as in Figure 5.
	mk := func(id strategy.StageID, ops graph.NodeSet, dev cluster.DeviceID, b, inflight int) strategy.Stage {
		cfg := schedule.Config{MicroBatch: b, K: 1}
		tasks, err := schedule.BuildTasks(cfg, mini, inflight)
		if err != nil {
			t.Fatal(err)
		}
		return strategy.Stage{ID: id, Ops: ops, Config: cfg,
			Devices: []cluster.DeviceID{dev}, InFlightSamples: inflight, Tasks: tasks}
	}
	// In-flight per Table 2 (backward traversal).
	i3 := schedule.ComputeInFlight(schedule.Config{MicroBatch: 4, K: 1}, nil)
	i2 := schedule.ComputeInFlight(schedule.Config{MicroBatch: 2, K: 1},
		[]schedule.Successor{{Config: schedule.Config{MicroBatch: 4, K: 1}, InFlight: i3}})
	i1 := schedule.ComputeInFlight(schedule.Config{MicroBatch: 1, K: 1},
		[]schedule.Successor{{Config: schedule.Config{MicroBatch: 2, K: 1}, InFlight: i2}})
	st := &strategy.Strategy{Planner: "mixed", MiniBatch: mini}
	st.Stages = append(st.Stages,
		mk(0, graph.NodeSetOf(in, l1), 0, 1, i1),
		mk(1, graph.NodeSetOf(l2), 1, 2, i2),
		mk(2, graph.NodeSetOf(l3), 2, 4, i3))
	if err := st.BuildEdges(g); err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.New(g, m).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	rtRes, err := New(g, m, Options{}).Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rtRes.IterationTime-simRes.IterationTime) / simRes.IterationTime; rel > 1e-9 {
		t.Errorf("mixed micro-batch: runtime %.9g vs sim %.9g", rtRes.IterationTime, simRes.IterationTime)
	}
}
