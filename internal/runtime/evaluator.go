package runtime

import (
	"graphpipe/internal/cluster"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/strategy"
)

// Backend is the eval-registry name of the concurrent runtime backend.
const Backend = "runtime"

// evaluator adapts the message-passing runtime to the shared Evaluator
// interface: execute the stage goroutines, hand the observed timeline to
// eval.Assemble. Because the virtual-clock protocol reproduces the
// earliest-finish execution the simulator computes, the assembled report
// is identical to the sim backend's — the parity tests pin it.
type evaluator struct{}

func init() { eval.Register(evaluator{}) }

// Name returns the registry key.
func (evaluator) Name() string { return Backend }

// Evaluate executes one training iteration of st on the concurrent
// runtime and assembles the shared report from the observed timeline.
func (evaluator) Evaluate(g *graph.Graph, topo *cluster.Topology, st *strategy.Strategy, opts eval.Options) (*eval.Report, error) {
	model, err := eval.ResolveModel(topo, opts)
	if err != nil {
		return nil, err
	}
	res, err := New(g, model, Options{Timeout: opts.Timeout}).Run(st)
	if err != nil {
		return nil, err
	}
	return eval.Assemble(g, model, st, Backend, res.Timeline), nil
}
