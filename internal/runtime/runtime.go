// Package runtime executes a pipeline-parallel strategy on a concurrent,
// message-passing runtime: one goroutine per pipeline stage (standing in
// for the stage's device group), typed activation and gradient messages
// over channels (standing in for NCCL/MPI transfers), and a distributed
// virtual clock carried on every message.
//
// It substitutes for the paper's FlexFlow-based distributed runtime (§7) at
// the coordination layer: the real system's correctness risks — deadlocks
// from mis-ordered schedules, missing tensors at stage boundaries, stale
// in-flight accounting — are exercised for real here, because stages
// genuinely block on channel receives until their inputs arrive. Only the
// kernel execution is virtual: instead of running CUDA kernels, each task
// advances the stage's virtual clock by the cost model's duration.
//
// The virtual-clock protocol makes the concurrent execution deterministic:
// a task starts at max(own clock, latest input timestamp) and the output
// message carries completion + transfer time — a distributed event-driven
// simulation. Its iteration time therefore must equal the sequential
// simulator's (package sim), which the tests assert; each implementation
// validates the other.
package runtime

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/eval"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// message is one tensor transfer between stages.
type message struct {
	// from identifies the sending stage: a task needs its sample range
	// covered by every relevant neighbor, not just any of them.
	from strategy.StageID
	// start/end is the sample range the tensor covers.
	start, end int
	// readyAt is the virtual time the tensor is available at the
	// receiver, including the transfer time.
	readyAt float64
}

// Options tunes the runtime.
type Options struct {
	// Timeout aborts a deadlocked execution (default 30s of wall time).
	Timeout time.Duration
}

// Result mirrors sim.Result for the fields the runtime can observe.
type Result struct {
	IterationTime float64
	Throughput    float64
	// StageClocks is each stage's final virtual time (before gradient
	// sync).
	StageClocks []float64
	// MessagesSent counts all inter-stage tensor transfers.
	MessagesSent int
	// Timeline holds every executed task, ordered per stage by execution
	// order (concatenated stage by stage, not globally sorted).
	Timeline []eval.TaskRecord
}

// PendingDep is one unsatisfied cross-stage dependency of a blocked task:
// the neighbor stage that has not delivered, and the contiguous sample
// range still missing from its coverage.
type PendingDep struct {
	// From is the neighbor stage the blocked stage is waiting on.
	From strategy.StageID
	// MissingStart/MissingEnd is the first contiguous run of samples
	// [MissingStart, MissingEnd) not yet covered by From's messages.
	MissingStart, MissingEnd int
}

// DeadlockError reports a wall-clock timeout while a stage was blocked on
// channel receives: the stuck stage, the task it could not start, and the
// exact dependencies that never arrived. A mis-ordered schedule (C4
// violations the planner let through, or a hand-edited artifact) surfaces
// here instead of as a bare timeout.
type DeadlockError struct {
	// Stage is the stuck stage.
	Stage strategy.StageID
	// Task is the task the stage could not start.
	Task schedule.Task
	// What names the missing tensor kind: "activations" or "gradients".
	What string
	// Pending lists, per unsatisfied neighbor, the sample ranges still
	// outstanding.
	Pending []PendingDep
}

// Error renders the deadlock with its full dependency diagnosis.
func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "runtime: stage %d deadlocked waiting for %s of samples [%d,%d) for task %s%d",
		e.Stage, e.What, e.Task.Start, e.Task.End, e.Task.Kind, e.Task.Index)
	for i, p := range e.Pending {
		if i == 0 {
			sb.WriteString(": pending ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "samples [%d,%d) from stage %d", p.MissingStart, p.MissingEnd, p.From)
	}
	return sb.String()
}

// Runtime executes strategies for one model on one topology.
type Runtime struct {
	g     *graph.Graph
	model costmodel.Model
	opts  Options
}

// New returns a Runtime.
func New(g *graph.Graph, model costmodel.Model, opts Options) *Runtime {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	return &Runtime{g: g, model: model, opts: opts}
}

// coverage tracks, per sample index, the virtual time its tensor arrived.
type coverage struct {
	readyAt []float64
}

func newCoverage(n int) *coverage {
	c := &coverage{readyAt: make([]float64, n)}
	for i := range c.readyAt {
		c.readyAt[i] = math.NaN()
	}
	return c
}

func (c *coverage) add(m message) {
	for s := m.start; s < m.end && s < len(c.readyAt); s++ {
		if math.IsNaN(c.readyAt[s]) || m.readyAt > c.readyAt[s] {
			c.readyAt[s] = m.readyAt
		}
	}
}

// have reports whether samples [start,end) are all covered and returns the
// latest arrival time.
func (c *coverage) have(start, end int) (float64, bool) {
	latest := 0.0
	for s := start; s < end; s++ {
		if math.IsNaN(c.readyAt[s]) {
			return 0, false
		}
		if c.readyAt[s] > latest {
			latest = c.readyAt[s]
		}
	}
	return latest, true
}

// missing returns the first contiguous run of samples in [start, end) not
// yet covered, or ok=false if the range is fully covered.
func (c *coverage) missing(start, end int) (lo, hi int, ok bool) {
	for s := start; s < end; s++ {
		if !math.IsNaN(c.readyAt[s]) {
			continue
		}
		lo = s
		hi = s + 1
		for hi < end && math.IsNaN(c.readyAt[hi]) {
			hi++
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// stageWorker is the per-stage goroutine state.
type stageWorker struct {
	id    strategy.StageID
	stage *strategy.Stage

	fwdTime, bwdTime float64
	arTime           float64

	// actCh receives activation messages from predecessor stages;
	// gradCh receives gradient messages from successor stages. Capacities
	// cover every possible message, so sends never block (transfers are
	// asynchronous, like the real runtime's communication threads).
	actCh  chan message
	gradCh chan message

	// needsAct / needsGrad: whether the stage has predecessors/successors.
	needsAct  bool
	needsGrad bool

	// Per-neighbor coverage: a forward task must receive its sample range
	// from every predecessor, a backward task from every successor.
	actReady  map[strategy.StageID]*coverage
	gradReady map[strategy.StageID]*coverage

	clock   float64
	sent    int
	records []eval.TaskRecord
}

// Run executes one training iteration of st and returns the observed
// virtual iteration time. It errors on invalid strategies and on deadlock
// (wall-clock timeout while a stage is blocked).
func (rt *Runtime) Run(st *strategy.Strategy) (*Result, error) {
	topo := rt.model.Topology()
	if err := st.Validate(rt.g, topo); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	n := len(st.Stages)

	// Per-sample transfer seconds for each stage edge (same tensor sizes
	// in both directions: gradients mirror activations). Fully precomputed
	// so the map is read-only once the stage goroutines start.
	perSample := make(map[[2]strategy.StageID]float64)
	rate := func(from, to strategy.StageID) float64 {
		bytes := rt.g.CutBytes(st.Stages[from].Ops, st.Stages[to].Ops)
		if bytes == 0 {
			bytes = rt.g.CutBytes(st.Stages[to].Ops, st.Stages[from].Ops)
		}
		if bytes == 0 {
			return 0
		}
		return bytes / topo.GroupBandwidth(st.Stages[from].Devices, st.Stages[to].Devices)
	}
	for i := 0; i < n; i++ {
		for _, succ := range st.Succ[i] {
			a, b := strategy.StageID(i), succ
			perSample[[2]strategy.StageID{a, b}] = rate(a, b)
			perSample[[2]strategy.StageID{b, a}] = rate(b, a)
		}
	}
	edgeRate := func(from, to strategy.StageID) float64 {
		return perSample[[2]strategy.StageID{from, to}]
	}

	workers := make([]*stageWorker, n)
	// Channel capacity: every micro-batch from every neighbor, so senders
	// never block.
	capFor := func(i int) int {
		c := 16
		for _, p := range st.Pred[i] {
			c += st.MiniBatch / st.Stages[p].Config.MicroBatch
		}
		for _, sc := range st.Succ[i] {
			c += st.MiniBatch / st.Stages[sc].Config.MicroBatch
		}
		return c
	}
	for i := 0; i < n; i++ {
		stage := &st.Stages[i]
		cfg := costmodel.StageConfig{
			Ops:                stage.Ops,
			MicroBatch:         stage.Config.MicroBatch,
			DataPar:            len(stage.Devices),
			InterNodeAllreduce: topo.GroupSpansNodes(stage.Devices),
		}
		if blk, ok := cluster.ContiguousBlock(stage.Devices); ok {
			cfg.Place = blk
		}
		costs := rt.model.Stage(rt.g, cfg)
		workers[i] = &stageWorker{
			id:        strategy.StageID(i),
			stage:     stage,
			fwdTime:   costs.ForwardTime,
			bwdTime:   costs.BackwardTime,
			arTime:    costs.AllreducePerIter,
			actCh:     make(chan message, capFor(i)),
			gradCh:    make(chan message, capFor(i)),
			needsAct:  len(st.Pred[i]) > 0,
			needsGrad: len(st.Succ[i]) > 0,
			actReady:  make(map[strategy.StageID]*coverage),
			gradReady: make(map[strategy.StageID]*coverage),
		}
		for _, pid := range st.Pred[i] {
			workers[i].actReady[pid] = newCoverage(st.MiniBatch)
		}
		for _, sid := range st.Succ[i] {
			workers[i].gradReady[sid] = newCoverage(st.MiniBatch)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w *stageWorker) {
			defer wg.Done()
			if err := rt.runStage(st, workers, w, edgeRate, topo.LinkLatency); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(workers[i])
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errCh:
		return nil, err
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &Result{StageClocks: make([]float64, n)}
	var iter float64
	for i, w := range workers {
		end := w.clock + w.arTime // gradient sync closes the iteration
		res.StageClocks[i] = w.clock
		if end > iter {
			iter = end
		}
		res.MessagesSent += w.sent
		res.Timeline = append(res.Timeline, w.records...)
	}
	res.IterationTime = iter
	res.Throughput = float64(st.MiniBatch) / iter
	return res, nil
}

// runStage executes one stage's task list, blocking on channel receives
// until each task's inputs have arrived. The wall-clock timeout converts a
// schedule deadlock into an error instead of a hang.
func (rt *Runtime) runStage(st *strategy.Strategy, workers []*stageWorker, w *stageWorker,
	edgeRate func(from, to strategy.StageID) float64, latency float64) error {

	deadline := time.Now().Add(rt.opts.Timeout)
	// awaitRange blocks until every neighbor's coverage includes the
	// sample range, returning the latest arrival time over all of them. On
	// timeout it returns a *DeadlockError diagnosing, per unsatisfied
	// neighbor, exactly which samples never arrived.
	awaitRange := func(ch chan message, covs map[strategy.StageID]*coverage, task schedule.Task, what string) (float64, error) {
		start, end := task.Start, task.End
		for {
			latest, all := 0.0, true
			for _, cov := range covs {
				t, ok := cov.have(start, end)
				if !ok {
					all = false
					break
				}
				if t > latest {
					latest = t
				}
			}
			if all {
				return latest, nil
			}
			select {
			case m := <-ch:
				covs[m.from].add(m)
			case <-time.After(time.Until(deadline)):
				// Drain messages already in flight so the diagnosis
				// reflects everything that was ever going to arrive —
				// and if the drain completed the coverage (the inputs
				// were merely queued when the deadline fired), the task
				// is runnable after all, not deadlocked.
				for {
					select {
					case m := <-ch:
						covs[m.from].add(m)
						continue
					default:
					}
					break
				}
				derr := &DeadlockError{Stage: w.id, Task: task, What: what}
				for _, from := range sortedStageIDs(covs) {
					if lo, hi, missing := covs[from].missing(start, end); missing {
						derr.Pending = append(derr.Pending, PendingDep{
							From: from, MissingStart: lo, MissingEnd: hi,
						})
					}
				}
				if len(derr.Pending) == 0 {
					continue // drained to completion: recheck and run
				}
				return 0, derr
			}
		}
	}

	for _, task := range w.stage.Tasks {
		ready := 0.0
		var err error
		if task.Kind == schedule.Forward && w.needsAct {
			ready, err = awaitRange(w.actCh, w.actReady, task, "activations")
		} else if task.Kind == schedule.Backward && w.needsGrad {
			ready, err = awaitRange(w.gradCh, w.gradReady, task, "gradients")
		}
		if err != nil {
			return err
		}
		start := math.Max(w.clock, ready)
		if task.Kind == schedule.Forward {
			w.clock = start + w.fwdTime
			for _, succ := range st.Succ[w.id] {
				t := w.clock
				if ps := edgeRate(w.id, succ); ps > 0 {
					t += ps*float64(task.End-task.Start) + latency
				}
				workers[succ].actCh <- message{from: w.id, start: task.Start, end: task.End, readyAt: t}
				w.sent++
			}
		} else {
			w.clock = start + w.bwdTime
			for _, pred := range st.Pred[w.id] {
				t := w.clock
				// Gradients flow succ→pred: on asymmetric hierarchies the
				// up-link rate differs from the forward edge's down-link rate.
				if ps := edgeRate(w.id, pred); ps > 0 {
					t += ps*float64(task.End-task.Start) + latency
				}
				workers[pred].gradCh <- message{from: w.id, start: task.Start, end: task.End, readyAt: t}
				w.sent++
			}
		}
		w.records = append(w.records, eval.TaskRecord{Stage: w.id, Task: task, Start: start, End: w.clock})
	}
	return nil
}

// sortedStageIDs returns the coverage map's keys in ascending order so
// deadlock diagnoses are deterministic.
func sortedStageIDs(covs map[strategy.StageID]*coverage) []strategy.StageID {
	ids := make([]strategy.StageID, 0, len(covs))
	for id := range covs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
