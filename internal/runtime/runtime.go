// Package runtime executes a pipeline-parallel strategy on a concurrent,
// message-passing runtime: one goroutine per pipeline stage (standing in
// for the stage's device group), typed activation and gradient messages
// over channels (standing in for NCCL/MPI transfers), and a distributed
// virtual clock carried on every message.
//
// It substitutes for the paper's FlexFlow-based distributed runtime (§7) at
// the coordination layer: the real system's correctness risks — deadlocks
// from mis-ordered schedules, missing tensors at stage boundaries, stale
// in-flight accounting — are exercised for real here, because stages
// genuinely block on channel receives until their inputs arrive. Only the
// kernel execution is virtual: instead of running CUDA kernels, each task
// advances the stage's virtual clock by the cost model's duration.
//
// The virtual-clock protocol makes the concurrent execution deterministic:
// a task starts at max(own clock, latest input timestamp) and the output
// message carries completion + transfer time — a distributed event-driven
// simulation. Its iteration time therefore must equal the sequential
// simulator's (package sim), which the tests assert; each implementation
// validates the other.
package runtime

import (
	"fmt"
	"math"
	"sync"
	"time"

	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// message is one tensor transfer between stages.
type message struct {
	// from identifies the sending stage: a task needs its sample range
	// covered by every relevant neighbor, not just any of them.
	from strategy.StageID
	// start/end is the sample range the tensor covers.
	start, end int
	// readyAt is the virtual time the tensor is available at the
	// receiver, including the transfer time.
	readyAt float64
}

// Options tunes the runtime.
type Options struct {
	// Timeout aborts a deadlocked execution (default 30s of wall time).
	Timeout time.Duration
}

// Result mirrors sim.Result for the fields the runtime can observe.
type Result struct {
	IterationTime float64
	Throughput    float64
	// StageClocks is each stage's final virtual time (before gradient
	// sync).
	StageClocks []float64
	// MessagesSent counts all inter-stage tensor transfers.
	MessagesSent int
}

// Runtime executes strategies for one model on one topology.
type Runtime struct {
	g     *graph.Graph
	model *costmodel.Model
	opts  Options
}

// New returns a Runtime.
func New(g *graph.Graph, model *costmodel.Model, opts Options) *Runtime {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	return &Runtime{g: g, model: model, opts: opts}
}

// coverage tracks, per sample index, the virtual time its tensor arrived.
type coverage struct {
	readyAt []float64
}

func newCoverage(n int) *coverage {
	c := &coverage{readyAt: make([]float64, n)}
	for i := range c.readyAt {
		c.readyAt[i] = math.NaN()
	}
	return c
}

func (c *coverage) add(m message) {
	for s := m.start; s < m.end && s < len(c.readyAt); s++ {
		if math.IsNaN(c.readyAt[s]) || m.readyAt > c.readyAt[s] {
			c.readyAt[s] = m.readyAt
		}
	}
}

// have reports whether samples [start,end) are all covered and returns the
// latest arrival time.
func (c *coverage) have(start, end int) (float64, bool) {
	latest := 0.0
	for s := start; s < end; s++ {
		if math.IsNaN(c.readyAt[s]) {
			return 0, false
		}
		if c.readyAt[s] > latest {
			latest = c.readyAt[s]
		}
	}
	return latest, true
}

// stageWorker is the per-stage goroutine state.
type stageWorker struct {
	id    strategy.StageID
	stage *strategy.Stage

	fwdTime, bwdTime float64
	arTime           float64

	// actCh receives activation messages from predecessor stages;
	// gradCh receives gradient messages from successor stages. Capacities
	// cover every possible message, so sends never block (transfers are
	// asynchronous, like the real runtime's communication threads).
	actCh  chan message
	gradCh chan message

	// needsAct / needsGrad: whether the stage has predecessors/successors.
	needsAct  bool
	needsGrad bool

	// Per-neighbor coverage: a forward task must receive its sample range
	// from every predecessor, a backward task from every successor.
	actReady  map[strategy.StageID]*coverage
	gradReady map[strategy.StageID]*coverage

	clock float64
	sent  int
}

// Run executes one training iteration of st and returns the observed
// virtual iteration time. It errors on invalid strategies and on deadlock
// (wall-clock timeout while a stage is blocked).
func (rt *Runtime) Run(st *strategy.Strategy) (*Result, error) {
	topo := rt.model.Topology()
	if err := st.Validate(rt.g, topo); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	n := len(st.Stages)

	// Per-sample transfer seconds for each stage edge (same tensor sizes
	// in both directions: gradients mirror activations). Fully precomputed
	// so the map is read-only once the stage goroutines start.
	perSample := make(map[[2]strategy.StageID]float64)
	rate := func(from, to strategy.StageID) float64 {
		bytes := rt.g.CutBytes(st.Stages[from].Ops, st.Stages[to].Ops)
		if bytes == 0 {
			bytes = rt.g.CutBytes(st.Stages[to].Ops, st.Stages[from].Ops)
		}
		if bytes == 0 {
			return 0
		}
		return bytes / topo.GroupBandwidth(st.Stages[from].Devices, st.Stages[to].Devices)
	}
	for i := 0; i < n; i++ {
		for _, succ := range st.Succ[i] {
			a, b := strategy.StageID(i), succ
			perSample[[2]strategy.StageID{a, b}] = rate(a, b)
			perSample[[2]strategy.StageID{b, a}] = rate(b, a)
		}
	}
	edgeRate := func(from, to strategy.StageID) float64 {
		return perSample[[2]strategy.StageID{from, to}]
	}

	workers := make([]*stageWorker, n)
	// Channel capacity: every micro-batch from every neighbor, so senders
	// never block.
	capFor := func(i int) int {
		c := 16
		for _, p := range st.Pred[i] {
			c += st.MiniBatch / st.Stages[p].Config.MicroBatch
		}
		for _, sc := range st.Succ[i] {
			c += st.MiniBatch / st.Stages[sc].Config.MicroBatch
		}
		return c
	}
	for i := 0; i < n; i++ {
		stage := &st.Stages[i]
		cfg := costmodel.StageConfig{
			Ops:                stage.Ops,
			MicroBatch:         stage.Config.MicroBatch,
			DataPar:            len(stage.Devices),
			InterNodeAllreduce: topo.GroupSpansNodes(stage.Devices),
		}
		costs := rt.model.Stage(rt.g, cfg)
		workers[i] = &stageWorker{
			id:        strategy.StageID(i),
			stage:     stage,
			fwdTime:   costs.ForwardTime,
			bwdTime:   costs.BackwardTime,
			arTime:    costs.AllreducePerIter,
			actCh:     make(chan message, capFor(i)),
			gradCh:    make(chan message, capFor(i)),
			needsAct:  len(st.Pred[i]) > 0,
			needsGrad: len(st.Succ[i]) > 0,
			actReady:  make(map[strategy.StageID]*coverage),
			gradReady: make(map[strategy.StageID]*coverage),
		}
		for _, pid := range st.Pred[i] {
			workers[i].actReady[pid] = newCoverage(st.MiniBatch)
		}
		for _, sid := range st.Succ[i] {
			workers[i].gradReady[sid] = newCoverage(st.MiniBatch)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w *stageWorker) {
			defer wg.Done()
			if err := rt.runStage(st, workers, w, edgeRate, topo.LinkLatency); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(workers[i])
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case err := <-errCh:
		return nil, err
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &Result{StageClocks: make([]float64, n)}
	var iter float64
	for i, w := range workers {
		end := w.clock + w.arTime // gradient sync closes the iteration
		res.StageClocks[i] = w.clock
		if end > iter {
			iter = end
		}
		res.MessagesSent += w.sent
	}
	res.IterationTime = iter
	res.Throughput = float64(st.MiniBatch) / iter
	return res, nil
}

// runStage executes one stage's task list, blocking on channel receives
// until each task's inputs have arrived. The wall-clock timeout converts a
// schedule deadlock into an error instead of a hang.
func (rt *Runtime) runStage(st *strategy.Strategy, workers []*stageWorker, w *stageWorker,
	edgeRate func(from, to strategy.StageID) float64, latency float64) error {

	deadline := time.Now().Add(rt.opts.Timeout)
	// awaitRange blocks until every neighbor's coverage includes the
	// sample range, returning the latest arrival time over all of them.
	awaitRange := func(ch chan message, covs map[strategy.StageID]*coverage, start, end int, what string) (float64, error) {
		for {
			latest, all := 0.0, true
			for _, cov := range covs {
				t, ok := cov.have(start, end)
				if !ok {
					all = false
					break
				}
				if t > latest {
					latest = t
				}
			}
			if all {
				return latest, nil
			}
			select {
			case m := <-ch:
				covs[m.from].add(m)
			case <-time.After(time.Until(deadline)):
				return 0, fmt.Errorf("runtime: stage %d deadlocked waiting for %s of samples [%d,%d)",
					w.id, what, start, end)
			}
		}
	}

	for _, task := range w.stage.Tasks {
		ready := 0.0
		var err error
		if task.Kind == schedule.Forward && w.needsAct {
			ready, err = awaitRange(w.actCh, w.actReady, task.Start, task.End, "activations")
		} else if task.Kind == schedule.Backward && w.needsGrad {
			ready, err = awaitRange(w.gradCh, w.gradReady, task.Start, task.End, "gradients")
		}
		if err != nil {
			return err
		}
		start := math.Max(w.clock, ready)
		if task.Kind == schedule.Forward {
			w.clock = start + w.fwdTime
			for _, succ := range st.Succ[w.id] {
				t := w.clock
				if ps := edgeRate(w.id, succ); ps > 0 {
					t += ps*float64(task.End-task.Start) + latency
				}
				workers[succ].actCh <- message{from: w.id, start: task.Start, end: task.End, readyAt: t}
				w.sent++
			}
		} else {
			w.clock = start + w.bwdTime
			for _, pred := range st.Pred[w.id] {
				t := w.clock
				if ps := edgeRate(pred, w.id); ps > 0 {
					t += ps*float64(task.End-task.Start) + latency
				}
				workers[pred].gradCh <- message{from: w.id, start: task.Start, end: task.End, readyAt: t}
				w.sent++
			}
		}
	}
	return nil
}
