package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with this Set's HTTP fault
// kinds, each drawing from its own stream salted by name (so two wrap
// points with the same spec inject independently). A nil Set or a nil
// receiver returns base unchanged; a nil base wraps
// http.DefaultTransport.
//
// Fault order per request: injected latency (honoring the request
// context, so a budgeted caller is cut off at its deadline, not after
// the sleep), then a dropped connection, then the real round trip,
// then — on a successful response — an injected 503, a mid-body
// truncation, or corrupted body bytes. Request bodies are never
// touched: the injected failures model a sick server and a sick wire,
// not a sick client.
func (s *Set) Transport(name string, base http.RoundTripper) http.RoundTripper {
	if s == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{
		base:       base,
		latencyDur: s.kinds[KindLatency].latency,
		latency:    s.site(name, KindLatency),
		drop:       s.site(name, KindDrop),
		err5xx:     s.site(name, KindErr5xx),
		truncate:   s.site(name, KindTruncate),
		corrupt:    s.site(name, KindCorrupt),
	}
}

type transport struct {
	base       http.RoundTripper
	latencyDur time.Duration

	latency, drop, err5xx, truncate, corrupt *site
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.latency.roll() && t.latencyDur > 0 {
		timer := time.NewTimer(t.latencyDur)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if t.drop.roll() {
		return nil, fmt.Errorf("faultinject: connection to %s dropped", req.URL.Host)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.err5xx.roll() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status:     "503 Service Unavailable (injected)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      resp.Proto,
			ProtoMajor: resp.ProtoMajor,
			ProtoMinor: resp.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(bytes.NewReader([]byte(`{"error":"injected_fault","detail":"faultinject: http.err5xx"}`))),
			Request:    req,
		}, nil
	}
	if t.truncate.roll() {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp.Body = &truncatedBody{data: data[:len(data)/2]}
		return resp, nil
	}
	if t.corrupt.roll() {
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(data) > 0 {
			pos := int(t.corrupt.next() % uint64(len(data)))
			data[pos] ^= 0x5A
		}
		resp.Body = io.NopCloser(bytes.NewReader(data))
		return resp, nil
	}
	return resp, nil
}

// truncatedBody serves a prefix of the real body and then fails the
// way a cut connection does: io.ErrUnexpectedEOF mid-stream, so
// readers that check their errors see a torn transfer, and readers
// that do not get half an artifact that no longer verifies.
type truncatedBody struct {
	data []byte
	off  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncatedBody) Close() error { return nil }
