package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, spec string) *Set {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseErrorsAndNilSet(t *testing.T) {
	if s, err := Parse(""); s != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", s, err)
	}
	for _, spec := range []string{
		"nonsense",
		"http.bogus=0.5",
		"http.drop=1.5",
		"http.drop=-0.1",
		"http.latency=0.5",          // missing duration
		"http.latency=0.5:nonsense", // bad duration
		"seed=x",
		"window=-3",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}

	// A nil Set is the disabled layer everywhere.
	var s *Set
	if got := s.Transport("x", http.DefaultTransport); got != http.DefaultTransport {
		t.Error("nil Set.Transport did not return base unchanged")
	}
	if s.Disk("x") != nil || s.Tallies() != nil || s.Kinds() != nil || s.String() != "" {
		t.Error("nil Set methods are not no-ops")
	}
	var d *DiskInjector
	if got := d.Read([]byte("ok")); string(got) != "ok" {
		t.Error("nil DiskInjector.Read mangled data")
	}
	if got, err := d.Write([]byte("ok")); err != nil || string(got) != "ok" {
		t.Error("nil DiskInjector.Write mangled data")
	}
}

// TestDeterministicSchedule pins the replay property: two Sets parsed
// from the same spec make identical fault decisions at the same site,
// and a different seed makes different ones.
func TestDeterministicSchedule(t *testing.T) {
	roll := func(spec string, n int) []bool {
		s := mustParse(t, spec)
		site := s.site("peers", KindDrop)
		out := make([]bool, n)
		for i := range out {
			out[i] = site.roll()
		}
		return out
	}
	const spec = "seed=42;http.drop=0.3"
	a, b := roll(spec, 200), roll(spec, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different fault schedules")
	}
	c := roll("seed=43;http.drop=0.3", 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Sites are salted by name: the same kind at another wrap point has
	// its own independent stream.
	s := mustParse(t, spec)
	d1, d2 := s.site("peers", KindDrop), s.site("backend", KindDrop)
	var seq1, seq2 []bool
	for i := 0; i < 200; i++ {
		seq1, seq2 = append(seq1, d1.roll()), append(seq2, d2.roll())
	}
	if reflect.DeepEqual(seq1, seq2) {
		t.Fatal("two sites with different names share a schedule")
	}
}

// TestWindowStopsInjection pins the fault-window contract the chaos
// soak relies on: past `window` draws, a site never injects again.
func TestWindowStopsInjection(t *testing.T) {
	s := mustParse(t, "seed=7;window=50;http.drop=1")
	site := s.site("x", KindDrop)
	for i := 0; i < 50; i++ {
		if !site.roll() {
			t.Fatalf("draw %d inside the window did not inject at prob 1", i)
		}
	}
	for i := 0; i < 100; i++ {
		if site.roll() {
			t.Fatalf("draw %d past the window injected", 50+i)
		}
	}
	if got := s.Tallies()["x/"+KindDrop]; got != 50 {
		t.Fatalf("tally = %d, want exactly the window's 50", got)
	}
}

func TestQuiesced(t *testing.T) {
	var nilSet *Set
	if !nilSet.Quiesced() {
		t.Fatal("nil Set must report quiesced: no faults are ever possible")
	}
	if mustParse(t, "seed=1;http.drop=0.5").Quiesced() {
		t.Fatal("windowless Set reported quiesced: faults remain possible forever")
	}

	s := mustParse(t, "seed=7;window=10;http.drop=0.5;http.err5xx=0")
	if !s.Quiesced() {
		t.Fatal("Set with no instantiated sites should be quiesced")
	}
	site := s.site("x", KindDrop)
	if s.Quiesced() {
		t.Fatal("fresh site has draws remaining, must not be quiesced")
	}
	// Zero-probability sites never inject, so they must not hold
	// quiescence hostage.
	s.site("x", KindErr5xx)
	for i := 0; i < 9; i++ {
		site.roll()
	}
	if s.Quiesced() {
		t.Fatal("site one draw short of the window reported quiesced")
	}
	site.roll()
	if !s.Quiesced() {
		t.Fatal("all windows spent but Quiesced is false")
	}
}

func TestTransportFaults(t *testing.T) {
	const body = `{"artifact":"0123456789abcdef0123456789abcdef"}`
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer backend.Close()

	get := func(s *Set) (*http.Response, []byte, error) {
		t.Helper()
		client := &http.Client{Transport: s.Transport("t", nil)}
		resp, err := client.Get(backend.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}

	t.Run("drop", func(t *testing.T) {
		s := mustParse(t, "http.drop=1")
		if _, _, err := get(s); err == nil || !strings.Contains(err.Error(), "dropped") {
			t.Fatalf("err = %v, want injected connection drop", err)
		}
		if got := s.Tallies()["t/"+KindDrop]; got != 1 {
			t.Fatalf("drop tally = %d, want 1", got)
		}
	})
	t.Run("err5xx", func(t *testing.T) {
		resp, data, err := get(mustParse(t, "http.err5xx=1"))
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("resp = %v (%v), want injected 503", resp, err)
		}
		if !strings.Contains(string(data), "injected_fault") {
			t.Fatalf("injected 503 body = %q", data)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		_, data, err := get(mustParse(t, "http.truncate=1"))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want io.ErrUnexpectedEOF mid-body", err)
		}
		if len(data) != len(body)/2 {
			t.Fatalf("got %d bytes before the cut, want %d", len(data), len(body)/2)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		resp, data, err := get(mustParse(t, "http.corrupt=1"))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("resp = %v (%v), want a 200 with corrupt bytes", resp, err)
		}
		if len(data) != len(body) || string(data) == body {
			t.Fatalf("body %q should differ from %q in exactly one byte", data, body)
		}
		diff := 0
		for i := range data {
			if data[i] != body[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("%d bytes differ, want 1", diff)
		}
	})
	t.Run("latency", func(t *testing.T) {
		s := mustParse(t, "http.latency=1:50ms")
		start := time.Now()
		if _, _, err := get(s); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < 50*time.Millisecond {
			t.Fatalf("request took %v, want >= injected 50ms", d)
		}
	})
	t.Run("latency honors context", func(t *testing.T) {
		s := mustParse(t, "http.latency=1:10s")
		client := &http.Client{Transport: s.Transport("t", nil), Timeout: 50 * time.Millisecond}
		start := time.Now()
		_, err := client.Get(backend.URL)
		if err == nil {
			t.Fatal("budgeted request survived a 10s injected sleep")
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("deadline took %v to fire; the injected sleep is not honoring ctx", d)
		}
	})
}

func TestDiskFaults(t *testing.T) {
	data := []byte("0123456789abcdef")

	d := mustParse(t, "disk.read-corrupt=1").Disk("store")
	got := d.Read(data)
	if string(got) == string(data) {
		t.Fatal("read corruption changed nothing")
	}
	if string(data) != "0123456789abcdef" {
		t.Fatal("read corruption mutated the caller's buffer")
	}

	d = mustParse(t, "disk.write-fail=1").Disk("store")
	if _, err := d.Write(data); err == nil {
		t.Fatal("write-fail did not error")
	}

	d = mustParse(t, "disk.write-partial=1").Disk("store")
	got, err := d.Write(data)
	if err != nil || len(got) != len(data)/2 {
		t.Fatalf("partial write = %d bytes (%v), want %d", len(got), err, len(data)/2)
	}
}

func TestKinds(t *testing.T) {
	s := mustParse(t, "seed=1;http.drop=0.1;disk.read-corrupt=0.2;http.err5xx=0")
	want := []string{KindReadCorrupt, KindDrop}
	got := s.Kinds()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Kinds = %v, want %v (zero-prob kinds excluded, sorted)", got, want)
	}
}
