// Package faultinject is the repository's deterministic chaos layer: a
// seeded source of injected failures that wraps the fleet's HTTP
// transports (latency, dropped connections, mid-body truncation,
// injected 5xx, corrupted artifact bytes) and its disk stores (failed
// and partial writes, read corruption), so the degradation paths the
// fleet promises — peer consults that time out, corrupt bytes that
// become misses, breakers that open and re-close — are reachable on
// demand instead of waiting for production to reach them.
//
// The design follows internal/synth's replay philosophy: every fault
// decision is drawn from a salted splitmix64 stream, never math/rand,
// so a fault schedule is a pure function of (seed, site, draw index)
// and replays identically across machines and Go releases. Each fault
// site — one kind at one named wrap point, e.g. the peer client's
// "peers/http.drop" — owns its stream and its draw counter; under
// concurrency the assignment of faults to specific requests follows
// the arrival order at that site, but which of the site's first N
// draws inject is fixed by the seed, so aggregate fault counts and the
// site-local schedule are reproducible.
//
// A Set is parsed from a spec string, selectable per process via flag
// or environment:
//
//	seed=42;window=400;http.latency=0.2:50ms;http.drop=0.1;http.err5xx=0.1;disk.read-corrupt=0.2
//
// `window=N` bounds the chaos: after N draws a site stops injecting
// forever, which is how a soak creates a deterministic "fault window"
// and then asserts the fleet heals (breakers re-close, error rate
// returns to zero) once it passes.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault kind names as they appear in spec strings and tally keys.
const (
	KindLatency      = "http.latency"
	KindDrop         = "http.drop"
	KindTruncate     = "http.truncate"
	KindErr5xx       = "http.err5xx"
	KindCorrupt      = "http.corrupt"
	KindWriteFail    = "disk.write-fail"
	KindWritePartial = "disk.write-partial"
	KindReadCorrupt  = "disk.read-corrupt"
)

var allKinds = []string{
	KindLatency, KindDrop, KindTruncate, KindErr5xx, KindCorrupt,
	KindWriteFail, KindWritePartial, KindReadCorrupt,
}

// kindSpec is one fault kind's parsed configuration.
type kindSpec struct {
	prob    float64
	latency time.Duration // KindLatency only
}

// Set is a parsed fault specification. A nil *Set is the disabled
// layer: every wrapping method is a no-op, so callers thread one
// pointer through unconditionally. Create with Parse.
type Set struct {
	spec   string
	seed   int64
	window uint64
	kinds  map[string]kindSpec

	mu    sync.Mutex
	sites map[string]*site // "name/kind" → site, created lazily
}

// Parse builds a Set from a spec string. The empty string returns
// (nil, nil): faults disabled. Entries are semicolon-separated k=v
// pairs: `seed=<int>` (default 1), `window=<draws>` (0 = unbounded),
// and `<kind>=<prob>` for each fault kind (KindLatency takes
// `<prob>:<duration>`). Probabilities must lie in [0, 1].
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Set{
		spec:  spec,
		seed:  1,
		kinds: make(map[string]kindSpec),
		sites: make(map[string]*site),
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q is not key=value", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed %q: %v", v, err)
			}
			s.seed = n
		case "window":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: window %q: %v", v, err)
			}
			s.window = n
		case KindLatency:
			prob, dur, ok := strings.Cut(v, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: %s wants prob:duration, got %q", k, v)
			}
			p, err := parseProb(k, prob)
			if err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: %s duration %q: %v", k, dur, err)
			}
			s.kinds[k] = kindSpec{prob: p, latency: d}
		default:
			if !isKind(k) {
				return nil, fmt.Errorf("faultinject: unknown key %q (kinds: %s)", k, strings.Join(allKinds, ", "))
			}
			p, err := parseProb(k, v)
			if err != nil {
				return nil, err
			}
			s.kinds[k] = kindSpec{prob: p}
		}
	}
	return s, nil
}

func parseProb(kind, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faultinject: %s probability %q must be in [0, 1]", kind, v)
	}
	return p, nil
}

func isKind(k string) bool {
	for _, kind := range allKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// String returns the spec the Set was parsed from ("" for nil): the
// replay key a chaos harness records alongside its results.
func (s *Set) String() string {
	if s == nil {
		return ""
	}
	return s.spec
}

// site returns (creating on first use) the decision stream for one
// fault kind at one named wrap point. Kinds absent from the spec get a
// zero-probability site, which never injects but still keeps the tally
// map's shape stable.
func (s *Set) site(name, kind string) *site {
	key := name + "/" + kind
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sites[key]; ok {
		return st
	}
	st := &site{
		prob:   s.kinds[kind].prob,
		window: s.window,
		rng:    newRNG(s.seed, key),
	}
	s.sites[key] = st
	return st
}

// Tallies snapshots how many faults each site has injected so far,
// keyed "name/kind". Sites that have injected nothing are omitted; a
// nil Set returns nil. The service and router surface this map in
// /v1/stats so every observed degradation can be matched to the fault
// that caused it.
func (s *Set) Tallies() map[string]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64)
	for key, st := range s.sites {
		if n := st.tally(); n > 0 {
			out[key] = n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Quiesced reports whether the Set's fault window is fully spent:
// window > 0 and every configured fault kind at every instantiated
// site has consumed its draws. After Quiesced returns true the wire
// and disks are guaranteed fault-free — the soak harness's signal to
// start asserting recovery (breakers re-closing, error rate zero)
// instead of sleeping and hoping. A nil Set is trivially quiesced; a
// windowless Set never is.
func (s *Set) Quiesced() bool {
	if s == nil {
		return true
	}
	if s.window == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, st := range s.sites {
		_, kind, _ := strings.Cut(key, "/")
		if s.kinds[kind].prob == 0 {
			continue // zero-probability sites never inject anyway
		}
		st.mu.Lock()
		spent := st.draws >= st.window
		st.mu.Unlock()
		if !spent {
			return false
		}
	}
	return true
}

// TallyTotal sums Tallies — convenient for "did anything fire" gates.
func (s *Set) TallyTotal() uint64 {
	var total uint64
	for _, n := range s.Tallies() {
		total += n
	}
	return total
}

// Kinds lists the fault kinds this Set configures with non-zero
// probability, sorted — the soak harness asserts how many kinds were
// active.
func (s *Set) Kinds() []string {
	if s == nil {
		return nil
	}
	var out []string
	for k, spec := range s.kinds {
		if spec.prob > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// site is one fault kind's decision stream at one wrap point: a salted
// splitmix64 sequence, a draw counter, and an injected-fault tally.
type site struct {
	mu       sync.Mutex
	rng      rng
	prob     float64
	window   uint64 // 0: unbounded
	draws    uint64
	injected uint64
}

// roll makes one fault decision. Past the window the stream is spent:
// the site never injects again (and stops drawing, so post-window
// behavior is literally fault-free, not just improbable).
func (s *site) roll() bool {
	if s == nil || s.prob == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.window > 0 && s.draws >= s.window {
		return false
	}
	s.draws++
	if s.rng.float() >= s.prob {
		return false
	}
	s.injected++
	return true
}

// next draws one raw value from the site's stream — used for the
// deterministic placement of corruption inside a body the roll already
// condemned.
func (s *site) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.next()
}

func (s *site) tally() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// rng is the same splitmix64 stream internal/synth and
// internal/loadgen use (each keeps its own unexported copy on
// purpose): no math/rand, so a fault schedule replays identically
// across Go releases.
type rng struct{ state uint64 }

func newRNG(seed int64, salt string) rng {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, b := range []byte(salt) {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
