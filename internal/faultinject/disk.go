package faultinject

// Disk returns a DiskInjector carrying this Set's disk fault kinds for
// one named store ("artifacts", "memos", ...). A nil Set returns nil,
// and a nil *DiskInjector is the disabled injector — stores hold the
// pointer unconditionally and call through it on every IO.
func (s *Set) Disk(name string) *DiskInjector {
	if s == nil {
		return nil
	}
	return &DiskInjector{
		writeFail:    s.site(name, KindWriteFail),
		writePartial: s.site(name, KindWritePartial),
		readCorrupt:  s.site(name, KindReadCorrupt),
	}
}

// DiskInjector mangles a store's reads and writes the way a failing
// disk would. It sits between the store and the bytes, not between
// the store and the filesystem: a partial write really lands
// truncated on disk, and a corrupted read really hands the caller
// flipped bytes — so the store's own verification and
// degrade-to-miss paths are what recover, exactly as they would have
// to in production.
type DiskInjector struct {
	writeFail, writePartial, readCorrupt *site
}

// Read passes stored bytes through the read-corruption fault: one
// deterministic byte flip in a copy (never the caller's buffer).
func (d *DiskInjector) Read(data []byte) []byte {
	if d == nil || !d.readCorrupt.roll() || len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	pos := int(d.readCorrupt.next() % uint64(len(out)))
	out[pos] ^= 0x5A
	return out
}

// Write passes bytes about to be persisted through the write faults:
// a failed write errors outright, a partial write truncates the data
// to half (modeling a torn write that still got renamed into place).
func (d *DiskInjector) Write(data []byte) ([]byte, error) {
	if d == nil {
		return data, nil
	}
	if d.writeFail.roll() {
		return nil, errWriteFail
	}
	if d.writePartial.roll() {
		return data[:len(data)/2], nil
	}
	return data, nil
}

// errWriteFail is the injected write error, distinguishable in logs.
var errWriteFail = errorString("faultinject: disk write failed")

type errorString string

func (e errorString) Error() string { return string(e) }
