package piper

import (
	"errors"
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
)

func TestPlanChainValid(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("invalid strategy: %v", err)
	}
	if r.Strategy.Planner != "piper" {
		t.Errorf("planner tag = %q", r.Strategy.Planner)
	}
	if r.Strategy.Depth() != r.Strategy.NumStages() {
		t.Errorf("Piper strategies are sequential: depth %d stages %d",
			r.Strategy.Depth(), r.Strategy.NumStages())
	}
}

func TestTwoBranchModelSolvable(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 3
	g := models.MMT(cfg)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(16)
	if err != nil {
		t.Fatalf("Piper should handle 2 branches: %v", err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatal(err)
	}
	// Piper's stages may span branches but the pipeline stays sequential.
	if r.Strategy.Depth() != r.Strategy.NumStages() {
		t.Error("Piper produced a non-sequential pipeline")
	}
}

// TestManyBranchesExplode reproduces Table 1's ✗: the downset lattice of a
// many-branch model exceeds any practical state budget.
func TestManyBranchesExplode(t *testing.T) {
	cfg := models.DefaultCANDLEUnoConfig() // 7 branches x 4 layers
	g := models.CANDLEUno(cfg)
	topo := cluster.NewSummitTopology(8)
	m := costmodel.NewDefault(topo)
	_, err := NewPlanner(g, m, Options{StateBudget: 50_000}).Plan(64)
	if !errors.Is(err, ErrSearchExplosion) {
		t.Fatalf("want ErrSearchExplosion, got %v", err)
	}
}

func TestDLRMExplodes(t *testing.T) {
	g := models.DLRM(models.DefaultDLRMConfig()) // 14 branches
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	_, err := NewPlanner(g, m, Options{StateBudget: 50_000}).Plan(64)
	if !errors.Is(err, ErrSearchExplosion) {
		t.Fatalf("want ErrSearchExplosion, got %v", err)
	}
}

func TestForcedAndInvalidInputs(t *testing.T) {
	g := models.SequentialTransformer(6)
	topo := cluster.NewSummitTopology(2)
	m := costmodel.NewDefault(topo)
	if _, err := NewPlanner(g, m, Options{}).Plan(0); err == nil {
		t.Error("accepted zero mini-batch")
	}
	if _, err := NewPlanner(g, m, Options{ForcedMicroBatch: 5}).Plan(32); err == nil {
		t.Error("accepted non-dividing forced micro-batch")
	}
	r, err := NewPlanner(g, m, Options{ForcedMicroBatch: 4}).Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range r.Strategy.Stages {
		if st.Config.MicroBatch != 4 {
			t.Errorf("micro-batch = %d", st.Config.MicroBatch)
		}
	}
}

func TestInfeasibleMemory(t *testing.T) {
	g := models.SequentialTransformer(6)
	topo := cluster.NewUniformTopology(2, 1e6, 100e9)
	if _, err := NewPlanner(g, costmodel.NewDefault(topo), Options{}).Plan(16); err == nil {
		t.Error("planned into 1MB devices")
	}
}

func TestStrategySimulates(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, m).Run(r.Strategy)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
}
