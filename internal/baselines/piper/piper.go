// Package piper reimplements the Piper planner (Tarnawski et al.,
// NeurIPS'21) as the paper's second SPP baseline (§7.1). Piper's dynamic
// program runs over the downsets of the operator DAG: a state is the set of
// operators already assigned to earlier pipeline stages, and a transition
// peels off the next stage as the difference of two downsets. Stages may
// therefore span branches — a strictly larger partition space than
// PipeDream's single linearization — but the downset lattice is exponential
// in the number of parallel branches (§7.2: |D| ≥ kⁿ), which is why the
// paper reports ✗ for DLRM and CANDLE-Uno. This implementation bounds the
// exploration with a state budget and returns ErrSearchExplosion beyond it,
// reproducing the ✗ entries of Table 1.
//
// Like PipeDream, Piper schedules the resulting sequential pipeline with
// synchronous 1F1B and uses the shared cost model.
package piper

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// Options tunes the baseline planner.
type Options struct {
	// MaxMicroBatch caps candidate micro-batch sizes (default 4096).
	MaxMicroBatch int
	// ForcedMicroBatch restricts the search to one size.
	ForcedMicroBatch int
	// StateBudget bounds the number of DP states plus enumeration steps
	// before the planner gives up (default 5e7), reproducing Table 1's ✗
	// for many-branch models.
	StateBudget int
	// DownsetLimit aborts before the DP if a quick count shows the graph
	// has more downsets than this (default 50 000): the lattice is the DP
	// state space, so exceeding it guarantees an explosion. This is the
	// cheap structural check behind Table 1's immediate ✗ entries.
	DownsetLimit int
	// Timeout bounds the planner wall-clock ("no strategy within
	// reasonable timeframes", §7.1; default 5 minutes).
	Timeout time.Duration
}

// Result is the planning outcome.
type Result struct {
	Strategy      *strategy.Strategy
	BottleneckTPS float64
	DPStates      int
}

// ErrSearchExplosion is returned when the downset lattice exceeds the state
// budget (the ✗ of Table 1).
var ErrSearchExplosion = errors.New("piper: downset state space exceeds budget")

// ErrNoStrategy is returned when no partition fits device memory.
var ErrNoStrategy = errors.New("piper: no valid strategy found")

// Planner is the Piper baseline planner.
type Planner struct {
	g     *graph.Graph
	model costmodel.Model
	topo  *cluster.Topology
	opts  Options
}

// NewPlanner constructs the planner.
func NewPlanner(g *graph.Graph, model costmodel.Model, opts Options) *Planner {
	if opts.MaxMicroBatch == 0 {
		opts.MaxMicroBatch = 4096
	}
	if opts.StateBudget == 0 {
		opts.StateBudget = 50_000_000
	}
	if opts.DownsetLimit == 0 {
		opts.DownsetLimit = 50_000
	}
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Minute
	}
	return &Planner{g: g, model: model, topo: model.Topology(), opts: opts}
}

// CountDownsets counts the downsets of g's operator DAG, aborting once the
// count exceeds limit (returning limit+1). The downset count is Piper's DP
// state space (§7.2: |D| ≥ kⁿ for n branches of k operators).
func CountDownsets(g *graph.Graph, limit int) int {
	count := 0
	// Enumerate ideals by the canonical extension rule: extend only with
	// ready operators at positions ≥ the last choice's successor slot.
	var rec func(rest graph.NodeSet, ready []graph.NodeID, minIdx int) bool
	rec = func(rest graph.NodeSet, ready []graph.NodeID, minIdx int) bool {
		for i := minIdx; i < len(ready); i++ {
			count++
			if count > limit {
				return false
			}
			v := ready[i]
			newRest := rest.Clone()
			newRest.Remove(v)
			newReady := append([]graph.NodeID(nil), ready[i+1:]...)
			for _, w := range g.Succ(v) {
				if !newRest.Contains(w) {
					continue
				}
				ok := true
				for _, pp := range g.Pred(w) {
					if newRest.Contains(pp) {
						ok = false
						break
					}
				}
				if ok {
					newReady = append(newReady, w)
				}
			}
			if !rec(newRest, newReady, 0) {
				return false
			}
		}
		return true
	}
	all := g.AllNodes()
	var frontier []graph.NodeID
	for _, v := range g.Sources() {
		frontier = append(frontier, v)
	}
	if !rec(all, frontier, 0) {
		return limit + 1
	}
	return count + 1 // + the empty downset
}

type dpEntry struct {
	bottleneck float64
	// stage is the operator set peeled off by the winning transition;
	// next identifies the successor state (the remaining upset's key).
	stage graph.NodeSet
	d1    int
	next  string
	ok    bool
}

type stateKey struct {
	upset string
	d     int
	depth int
}

type searchState struct {
	p        *Planner
	b        int
	mini     int
	memo     map[stateKey]dpEntry
	budget   int
	states   int
	deadline time.Time
}

var errBudget = errors.New("budget exceeded")

// frontierOps returns the operators of the upset whose predecessors are all
// outside it (the candidates for the next stage's "first" operators).
func (s *searchState) frontierOps(upset graph.NodeSet) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range upset.IDs() {
		ready := true
		for _, p := range s.p.g.Pred(v) {
			if upset.Contains(p) {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, v)
		}
	}
	return out
}

// enumerateStages yields every non-empty downset of the sub-DAG induced on
// the upset: each is a valid next pipeline stage (the difference of two
// downsets of the full graph). The enumeration is the exponential heart of
// Piper; every yielded candidate counts against the state budget, so
// many-branch models abort with ErrSearchExplosion instead of running for
// the lattice's kⁿ lifetime.
func (s *searchState) enumerateStages(upset graph.NodeSet, yield func(stage graph.NodeSet) error) error {
	frontier := s.frontierOps(upset)
	// Recursive inclusion/exclusion over frontier-closure: a downset of
	// the sub-DAG is built by repeatedly picking ready operators.
	var rec func(stage, rest graph.NodeSet, ready []graph.NodeID, minIdx int) error
	rec = func(stage, rest graph.NodeSet, ready []graph.NodeID, minIdx int) error {
		for i := minIdx; i < len(ready); i++ {
			s.states++
			if s.states > s.budget {
				return errBudget
			}
			if s.states%(1<<16) == 0 && time.Now().After(s.deadline) {
				return errBudget
			}
			v := ready[i]
			newStage := stage.Clone()
			newStage.Add(v)
			newRest := rest.Clone()
			newRest.Remove(v)
			// Newly ready ops: successors of v whose preds are all out of
			// newRest.
			newReady := append([]graph.NodeID(nil), ready[i+1:]...)
			for _, w := range s.p.g.Succ(v) {
				if !newRest.Contains(w) {
					continue
				}
				ok := true
				for _, pp := range s.p.g.Pred(w) {
					if newRest.Contains(pp) {
						ok = false
						break
					}
				}
				if ok {
					newReady = append(newReady, w)
				}
			}
			if err := yield(newStage); err != nil {
				return err
			}
			if err := rec(newStage, newRest, newReady, 0); err != nil {
				return err
			}
		}
		return nil
	}
	empty := graph.NewNodeSet(s.p.g.Len())
	return rec(empty, upset.Clone(), frontier, 0)
}

type stageEval struct {
	tps          float64
	weightMem    float64
	actPerSample float64
}

// dp solves: partition the remaining upset over d devices into exactly
// `depth` further stages, minimizing the bottleneck TPS.
func (s *searchState) dp(upset graph.NodeSet, d, depth int, evals map[string]*stageEval) (dpEntry, error) {
	key := stateKey{upset: upset.Key(), d: d, depth: depth}
	if e, ok := s.memo[key]; ok {
		return e, nil
	}
	s.states++
	if s.states > s.budget {
		return dpEntry{}, errBudget
	}
	var best dpEntry
	best.bottleneck = math.Inf(1)

	evalStage := func(stage graph.NodeSet, d1, inFlightMicro int) (float64, bool) {
		k := stage.Key() + "/" + itoa(d1)
		ev := evals[k]
		if ev == nil {
			cfg := costmodel.StageConfig{
				Ops:                stage,
				MicroBatch:         s.b,
				DataPar:            d1,
				InterNode:          s.p.topo.Len() > 4,
				InterNodeAllreduce: d1 > 4,
			}
			costs := s.p.model.Stage(s.p.g, cfg)
			ev = &stageEval{
				tps:          s.p.model.TPS(s.p.g, cfg, s.mini),
				weightMem:    costs.WeightBytes,
				actPerSample: costs.ActivationBytesPerSample,
			}
			evals[k] = ev
		}
		if ev.weightMem+ev.actPerSample*float64(inFlightMicro*s.b) > s.p.topo.MinMemory() {
			return 0, false
		}
		return ev.tps, true
	}

	if depth == 1 {
		if tps, ok := evalStage(upset, d, 1); ok {
			best = dpEntry{bottleneck: tps, stage: upset.Clone(), d1: d, next: "", ok: true}
		}
		s.memo[key] = best
		return best, nil
	}

	err := s.enumerateStages(upset, func(stage graph.NodeSet) error {
		if stage.Len() == upset.Len() {
			return nil // must leave work for the remaining depth-1 stages
		}
		rest := upset.Minus(stage)
		if rest.Len() < depth-1 {
			return nil
		}
		for d1 := 1; d1 <= d-(depth-1); d1++ {
			tps, ok := evalStage(stage, d1, depth)
			if !ok {
				continue
			}
			if tps >= best.bottleneck {
				continue
			}
			sub, err := s.dp(rest, d-d1, depth-1, evals)
			if err != nil {
				return err
			}
			if !sub.ok {
				continue
			}
			bn := math.Max(tps, sub.bottleneck)
			if bn < best.bottleneck {
				best = dpEntry{bottleneck: bn, stage: stage.Clone(), d1: d1,
					next: rest.Key(), ok: true}
			}
		}
		return nil
	})
	if err != nil {
		return dpEntry{}, err
	}
	s.memo[key] = best
	return best, nil
}

func itoa(n int) string { return fmt.Sprint(n) }

func (p *Planner) microBatchCandidates(miniBatch int) []int {
	if p.opts.ForcedMicroBatch > 0 {
		if miniBatch%p.opts.ForcedMicroBatch != 0 {
			return nil
		}
		return []int{p.opts.ForcedMicroBatch}
	}
	var out []int
	for b := 1; b <= miniBatch && b <= p.opts.MaxMicroBatch; b *= 2 {
		if miniBatch%b == 0 {
			out = append(out, b)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Plan runs the downset DP over stage counts and micro-batch sizes.
func (p *Planner) Plan(miniBatch int) (*Result, error) {
	if miniBatch <= 0 {
		return nil, fmt.Errorf("piper: invalid mini-batch %d", miniBatch)
	}
	bCands := p.microBatchCandidates(miniBatch)
	if len(bCands) == 0 {
		return nil, fmt.Errorf("piper: no candidate micro-batch sizes divide mini-batch %d", miniBatch)
	}
	// Structural pre-check: the downset lattice is the DP state space.
	if n := CountDownsets(p.g, p.opts.DownsetLimit); n > p.opts.DownsetLimit {
		return nil, fmt.Errorf("%w: > %d downsets", ErrSearchExplosion, p.opts.DownsetLimit)
	}
	deadline := time.Now().Add(p.opts.Timeout)
	maxDepth := p.topo.Len()
	if n := p.g.Len(); n < maxDepth {
		maxDepth = n
	}
	all := p.g.AllNodes()

	type winner struct {
		s     *searchState
		depth int
		entry dpEntry
		score float64
	}
	var best *winner
	states := 0
	budget := p.opts.StateBudget
	for _, b := range bCands {
		s := &searchState{p: p, b: b, mini: miniBatch,
			memo: make(map[stateKey]dpEntry), budget: budget, deadline: deadline}
		evals := make(map[string]*stageEval)
		for depth := 1; depth <= maxDepth; depth++ {
			e, err := s.dp(all, p.topo.Len(), depth, evals)
			if err != nil {
				return nil, fmt.Errorf("%w (budget %d)", ErrSearchExplosion, p.opts.StateBudget)
			}
			if !e.ok {
				continue
			}
			// Synchronous 1F1B iteration estimate (see pipedream):
			// bubbles scale with pipeline depth.
			score := e.bottleneck * float64(miniBatch+(depth-1)*b)
			if best == nil || score < best.score {
				best = &winner{s: s, depth: depth, entry: e, score: score}
			}
		}
		states += s.states
		budget -= s.states
		if budget <= 0 {
			return nil, fmt.Errorf("%w (budget %d)", ErrSearchExplosion, p.opts.StateBudget)
		}
	}
	if best == nil {
		return nil, ErrNoStrategy
	}
	st, err := p.assemble(best.s, best.depth, miniBatch)
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: st, BottleneckTPS: best.entry.bottleneck, DPStates: states}, nil
}

// assemble reconstructs the stage chain from the memo.
func (p *Planner) assemble(s *searchState, depth, miniBatch int) (*strategy.Strategy, error) {
	st := &strategy.Strategy{Planner: "piper", MiniBatch: miniBatch}
	upset := p.g.AllNodes()
	d := p.topo.Len()
	var order []strategy.StageID
	var counts []int
	for k := depth; k >= 1; k-- {
		e, ok := s.memo[stateKey{upset: upset.Key(), d: d, depth: k}]
		if !ok || !e.ok {
			return nil, fmt.Errorf("piper: reconstruction failed at depth %d", k)
		}
		id := strategy.StageID(len(st.Stages))
		cfg := schedule.Config{MicroBatch: s.b, K: 1}
		inFlight := k * s.b
		tasks, err := schedule.BuildTasks(cfg, miniBatch, inFlight)
		if err != nil {
			return nil, err
		}
		st.Stages = append(st.Stages, strategy.Stage{
			ID: id, Ops: e.stage, Config: cfg,
			InFlightSamples: inFlight, Tasks: tasks,
		})
		counts = append(counts, e.d1)
		order = append(order, id)
		upset = upset.Minus(e.stage)
		d -= e.d1
	}
	groups, err := cluster.PlaceStages(p.topo, counts)
	if err != nil {
		return nil, err
	}
	for gi := range st.Stages {
		st.Stages[gi].Devices = groups[gi]
	}
	if err := st.BuildEdges(p.g); err != nil {
		return nil, err
	}
	st.AddSequentialEdges(order)
	if err := st.Validate(p.g, p.topo); err != nil {
		return nil, fmt.Errorf("piper: assembled strategy invalid: %w", err)
	}
	return st, nil
}
