// Package pipedream reimplements the PipeDream planner (Narayanan et al.,
// SOSP'19 / ICML'21) as the paper's primary SPP baseline (§7.1): it
// linearizes the computation graph into a single operator chain, then runs
// a dynamic program over contiguous chain ranges that jointly picks stage
// boundaries and per-stage data-parallel replication, scheduling with
// synchronous 1F1B. Per §7.1, at operator granularity this search space
// covers the partitions of GPipe, DAPPLE, and the other SPP systems.
//
// Faithful to the original algorithm (and unlike GraphPipe §5):
//
//   - the DP runs over the linearized chain, so the "imaginary linear
//     dependencies" of Figure 2 are baked into every strategy;
//   - replication factors range over all integers 1..m, not powers of two;
//   - there is no binary search: the DP directly minimizes the bottleneck
//     stage time, tracking pipeline depth for 1F1B memory accounting.
//
// The planner consumes the same cost model as GraphPipe, so strategy
// quality differences are attributable to the algorithms.
package pipedream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/graph"
	"graphpipe/internal/schedule"
	"graphpipe/internal/strategy"
)

// Options tunes the baseline planner.
type Options struct {
	// MaxMicroBatch caps candidate micro-batch sizes (default 4096).
	MaxMicroBatch int
	// ForcedMicroBatch restricts the search to one size (Figure 7 right).
	ForcedMicroBatch int
}

// Result is the planning outcome.
type Result struct {
	Strategy      *strategy.Strategy
	BottleneckTPS float64
	DPStates      int
}

// ErrNoStrategy is returned when no partition fits device memory.
var ErrNoStrategy = errors.New("pipedream: no valid strategy found")

// Planner is the PipeDream baseline planner.
type Planner struct {
	g     *graph.Graph
	model costmodel.Model
	topo  *cluster.Topology
	opts  Options
	order []graph.NodeID // linearized operator chain
}

// NewPlanner constructs the planner. Any DAG is accepted: linearization
// imposes a total order regardless of branches.
func NewPlanner(g *graph.Graph, model costmodel.Model, opts Options) *Planner {
	if opts.MaxMicroBatch == 0 {
		opts.MaxMicroBatch = 4096
	}
	return &Planner{
		g:     g,
		model: model,
		topo:  model.Topology(),
		opts:  opts,
		order: g.Topo(),
	}
}

// dpEntry is the best solution for a DP state.
type dpEntry struct {
	bottleneck float64
	// split: the suffix stage is order[i:j) on d1 devices; rest solved by
	// state (j, d-d1, depth-1).
	j, d1 int
	ok    bool
}

type stageEval struct {
	tps          float64
	weightMem    float64
	actPerSample float64
}

type searchState struct {
	p      *Planner
	b      int // micro-batch size under consideration
	mini   int
	memo   map[[3]int]dpEntry
	evals  map[[3]int]stageEval
	states int
}

// opsRange returns the operator set of the linearized range [i, j).
func (s *searchState) opsRange(i, j int) graph.NodeSet {
	set := graph.NewNodeSet(s.p.g.Len())
	for k := i; k < j; k++ {
		set.Add(s.p.order[k])
	}
	return set
}

// stageTPS evaluates the range [i,j) as one stage with d1 replicas holding
// `depth` 1F1B in-flight micro-batches; ok=false when memory is exceeded.
// Depth-independent costs are cached per (i, j, d1).
func (s *searchState) stageTPS(i, j, d1, depth int) (float64, bool) {
	key := [3]int{i, j, d1}
	ev, ok := s.evals[key]
	if !ok {
		cfg := costmodel.StageConfig{
			Ops:                s.opsRange(i, j),
			MicroBatch:         s.b,
			DataPar:            d1,
			InterNode:          s.p.topo.Len() > 4,
			InterNodeAllreduce: d1 > 4,
		}
		costs := s.p.model.Stage(s.p.g, cfg)
		ev = stageEval{
			tps:          s.p.model.TPS(s.p.g, cfg, s.mini),
			weightMem:    costs.WeightBytes,
			actPerSample: costs.ActivationBytesPerSample,
		}
		s.evals[key] = ev
	}
	inFlight := float64(depth * s.b)
	if ev.weightMem+ev.actPerSample*inFlight > s.p.topo.MinMemory() {
		return 0, false
	}
	return ev.tps, true
}

// dp solves the suffix order[i:] on d devices partitioned into exactly
// `depth` sequential stages, minimizing the bottleneck stage TPS.
func (s *searchState) dp(i, d, depth int) dpEntry {
	key := [3]int{i, d, depth}
	if e, ok := s.memo[key]; ok {
		return e
	}
	s.states++
	n := len(s.p.order)
	var best dpEntry
	best.bottleneck = math.Inf(1)
	if depth == 1 {
		// Single final stage covering the whole suffix.
		if tps, ok := s.stageTPS(i, n, d, 1); ok {
			best = dpEntry{bottleneck: tps, j: n, d1: d, ok: true}
		}
		s.memo[key] = best
		return best
	}
	for j := i + 1; j <= n-(depth-1); j++ {
		for d1 := 1; d1 <= d-(depth-1); d1++ {
			tps, ok := s.stageTPS(i, j, d1, depth)
			if !ok {
				continue
			}
			if tps >= best.bottleneck {
				continue // this stage alone is already worse
			}
			rest := s.dp(j, d-d1, depth-1)
			if !rest.ok {
				continue
			}
			bn := math.Max(tps, rest.bottleneck)
			if bn < best.bottleneck {
				best = dpEntry{bottleneck: bn, j: j, d1: d1, ok: true}
			}
		}
	}
	s.memo[key] = best
	return best
}

func (p *Planner) microBatchCandidates(miniBatch int) []int {
	if p.opts.ForcedMicroBatch > 0 {
		if miniBatch%p.opts.ForcedMicroBatch != 0 {
			return nil
		}
		return []int{p.opts.ForcedMicroBatch}
	}
	var out []int
	for b := 1; b <= miniBatch && b <= p.opts.MaxMicroBatch; b *= 2 {
		if miniBatch%b == 0 {
			out = append(out, b)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Plan searches stage counts, split points, replication factors, and
// micro-batch sizes, returning the strategy with the lowest bottleneck TPS.
func (p *Planner) Plan(miniBatch int) (*Result, error) {
	if miniBatch <= 0 {
		return nil, fmt.Errorf("pipedream: invalid mini-batch %d", miniBatch)
	}
	bCands := p.microBatchCandidates(miniBatch)
	if len(bCands) == 0 {
		return nil, fmt.Errorf("pipedream: no candidate micro-batch sizes divide mini-batch %d", miniBatch)
	}
	maxDepth := p.topo.Len()
	if n := len(p.order); n < maxDepth {
		maxDepth = n
	}

	type winner struct {
		s     *searchState
		depth int
		entry dpEntry
		score float64
	}
	var best *winner
	states := 0
	for _, b := range bCands {
		s := &searchState{p: p, b: b, mini: miniBatch,
			memo: make(map[[3]int]dpEntry), evals: make(map[[3]int]stageEval)}
		for depth := 1; depth <= maxDepth; depth++ {
			e := s.dp(0, p.topo.Len(), depth)
			if !e.ok {
				continue
			}
			// Synchronous 1F1B iteration estimate: the pipeline fills and
			// drains every iteration (m + depth − 1 bottleneck slots for
			// m = B/b micro-batches), so deep pipelines pay warm-up and
			// cool-down bubbles the steady-state bottleneck TPS hides.
			score := e.bottleneck * float64(miniBatch+(depth-1)*b)
			if best == nil || score < best.score {
				best = &winner{s: s, depth: depth, entry: e, score: score}
			}
		}
		states += s.states
	}
	if best == nil {
		return nil, ErrNoStrategy
	}
	st, err := p.assemble(best.s, best.depth, miniBatch)
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: st, BottleneckTPS: best.entry.bottleneck, DPStates: states}, nil
}

// assemble reconstructs the chain of stages from the memoized splits and
// builds the sequential 1F1B strategy.
func (p *Planner) assemble(s *searchState, depth, miniBatch int) (*strategy.Strategy, error) {
	st := &strategy.Strategy{Planner: "pipedream", MiniBatch: miniBatch}
	i, d := 0, p.topo.Len()
	var order []strategy.StageID
	var counts []int
	for k := depth; k >= 1; k-- {
		e := s.memo[[3]int{i, d, k}]
		if !e.ok {
			return nil, fmt.Errorf("pipedream: reconstruction failed at (%d,%d,%d)", i, d, k)
		}
		id := strategy.StageID(len(st.Stages))
		cfg := schedule.Config{MicroBatch: s.b, K: 1}
		inFlight := k * s.b // 1F1B: depth-from-sink micro-batches
		tasks, err := schedule.BuildTasks(cfg, miniBatch, inFlight)
		if err != nil {
			return nil, err
		}
		st.Stages = append(st.Stages, strategy.Stage{
			ID:              id,
			Ops:             s.opsRange(i, e.j),
			Config:          cfg,
			InFlightSamples: inFlight,
			Tasks:           tasks,
		})
		counts = append(counts, e.d1)
		order = append(order, id)
		i, d = e.j, d-e.d1
	}
	groups, err := cluster.PlaceStages(p.topo, counts)
	if err != nil {
		return nil, err
	}
	for gi := range st.Stages {
		st.Stages[gi].Devices = groups[gi]
	}
	if err := st.BuildEdges(p.g); err != nil {
		return nil, err
	}
	// The linearization's imaginary dependencies make the pipeline
	// strictly sequential (Figure 2, top).
	st.AddSequentialEdges(order)
	if err := st.Validate(p.g, p.topo); err != nil {
		return nil, fmt.Errorf("pipedream: assembled strategy invalid: %w", err)
	}
	return st, nil
}
