package pipedream

import (
	"graphpipe/internal/cluster"
	"graphpipe/internal/graph"
	"graphpipe/internal/planner"
	"graphpipe/internal/strategy"
)

// registered adapts the PipeDream baseline to the planner.Planner interface
// and registers it as "pipedream".
type registered struct{}

func (registered) Name() string { return "pipedream" }

func (registered) Plan(g *graph.Graph, topo *cluster.Topology, miniBatch int, opts planner.Options) (*strategy.Strategy, planner.Stats, error) {
	r, err := NewPlanner(g, opts.Model(topo), Options{
		ForcedMicroBatch: opts.ForcedMicroBatch,
		MaxMicroBatch:    opts.MaxMicroBatch,
	}).Plan(miniBatch)
	if err != nil {
		return nil, planner.Stats{}, err
	}
	return r.Strategy, planner.Stats{
		BottleneckTPS: r.BottleneckTPS,
		DPStates:      r.DPStates,
	}, nil
}

func init() { planner.Register(registered{}) }
