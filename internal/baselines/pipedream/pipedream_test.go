package pipedream

import (
	"testing"

	"graphpipe/internal/cluster"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/models"
	"graphpipe/internal/sim"
)

func plan(t testing.TB, devices, mini int, opts Options) (*Result, costmodel.Model) {
	t.Helper()
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(devices)
	m := costmodel.NewDefault(topo)
	p := NewPlanner(g, m, opts)
	r, err := p.Plan(mini)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return r, m
}

func TestPlanChainValid(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatalf("invalid strategy: %v", err)
	}
	if r.Strategy.Planner != "pipedream" {
		t.Errorf("planner tag = %q", r.Strategy.Planner)
	}
	// Sequential: depth equals stage count.
	if r.Strategy.Depth() != r.Strategy.NumStages() {
		t.Errorf("depth %d != stages %d", r.Strategy.Depth(), r.Strategy.NumStages())
	}
	if r.DPStates == 0 || r.BottleneckTPS <= 0 {
		t.Errorf("stats missing: %+v", r)
	}
}

// TestSPPStaysSequentialOnBranches is the defining property of the
// baseline: even on a multi-branch model, PipeDream's strategies form a
// strict chain (Figure 2 top), so depth always equals stage count.
func TestSPPStaysSequentialOnBranches(t *testing.T) {
	cfg := models.DefaultMMTConfig()
	cfg.Branches = 2
	cfg.LayersPerBranch = 4
	g := models.MMT(cfg)
	topo := cluster.NewSummitTopology(8)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Strategy.Validate(g, topo); err != nil {
		t.Fatal(err)
	}
	if r.Strategy.Depth() != r.Strategy.NumStages() {
		t.Errorf("SPP produced non-sequential pipeline: depth %d, stages %d",
			r.Strategy.Depth(), r.Strategy.NumStages())
	}
	// 1F1B in-flight counts decrease along the chain.
	for i := 1; i < r.Strategy.NumStages(); i++ {
		if r.Strategy.Stages[i].InFlightSamples > r.Strategy.Stages[i-1].InFlightSamples {
			t.Errorf("in-flight not monotone along chain: stage %d", i)
		}
	}
}

func TestUsesAllDevices(t *testing.T) {
	r, _ := plan(t, 4, 32, Options{})
	used := 0
	for _, st := range r.Strategy.Stages {
		used += len(st.Devices)
	}
	if used != 4 {
		t.Errorf("devices used = %d, want 4", used)
	}
}

func TestForcedMicroBatch(t *testing.T) {
	r, _ := plan(t, 4, 32, Options{ForcedMicroBatch: 4})
	for _, st := range r.Strategy.Stages {
		if st.Config.MicroBatch != 4 {
			t.Errorf("micro-batch = %d, want 4", st.Config.MicroBatch)
		}
	}
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	if _, err := NewPlanner(g, costmodel.NewDefault(topo), Options{ForcedMicroBatch: 5}).Plan(32); err == nil {
		t.Error("accepted non-dividing forced micro-batch")
	}
}

func TestInvalidMiniBatch(t *testing.T) {
	g := models.SequentialTransformer(4)
	topo := cluster.NewSummitTopology(2)
	if _, err := NewPlanner(g, costmodel.NewDefault(topo), Options{}).Plan(0); err == nil {
		t.Error("accepted zero mini-batch")
	}
}

func TestInfeasibleMemory(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewUniformTopology(4, 1e6, 100e9)
	if _, err := NewPlanner(g, costmodel.NewDefault(topo), Options{}).Plan(32); err == nil {
		t.Error("planned into 1MB devices")
	}
}

func TestStrategySimulates(t *testing.T) {
	g := models.SequentialTransformer(8)
	topo := cluster.NewSummitTopology(4)
	m := costmodel.NewDefault(topo)
	r, err := NewPlanner(g, m, Options{}).Plan(32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, m).Run(r.Strategy)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
}
