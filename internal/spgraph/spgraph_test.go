package spgraph

import (
	"testing"

	"graphpipe/internal/graph"
)

// chain builds in -> l0 -> l1 -> ... -> l(n-1).
func chain(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("chain")
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, b.AddOp(graph.Op{Kind: graph.OpLinear, FwdFLOPs: 1, OutputBytes: 1}))
	}
	b.Chain(ids...)
	return b.MustBuild()
}

// branches builds in -> {branch_i: k ops each} -> out, i = 0..nb-1.
func branches(t testing.TB, nb, k int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("branches")
	in := b.AddOp(graph.Op{Name: "in", Kind: graph.OpInput, OutputBytes: 1})
	out := b.AddOp(graph.Op{Name: "out", Kind: graph.OpConcat, FwdFLOPs: 1, OutputBytes: 1})
	for i := 0; i < nb; i++ {
		prev := in
		for j := 0; j < k; j++ {
			op := b.AddOp(graph.Op{Kind: graph.OpLinear, FwdFLOPs: 1, OutputBytes: 1})
			b.Connect(prev, op)
			prev = op
		}
		b.Connect(prev, out)
	}
	return b.MustBuild()
}

func TestValidate(t *testing.T) {
	if err := Validate(chain(t, 3)); err != nil {
		t.Errorf("chain should validate: %v", err)
	}
	// Multiple sources are fine: multi-modal branches each read their own
	// input.
	b := graph.NewBuilder("two-sources")
	x := b.AddOp(graph.Op{Name: "x"})
	y := b.AddOp(graph.Op{Name: "y"})
	z := b.AddOp(graph.Op{Name: "z"})
	b.Connect(x, z)
	b.Connect(y, z)
	if err := Validate(b.MustBuild()); err != nil {
		t.Errorf("two-source graph should validate: %v", err)
	}
	b2 := graph.NewBuilder("two-sinks")
	a := b2.AddOp(graph.Op{Name: "a"})
	c := b2.AddOp(graph.Op{Name: "c"})
	e := b2.AddOp(graph.Op{Name: "e"})
	b2.Connect(a, c)
	b2.Connect(a, e)
	if err := Validate(b2.MustBuild()); err == nil {
		t.Error("two-sink graph should not validate")
	}
}

func TestChainCutsAndSplits(t *testing.T) {
	g := chain(t, 4)
	d := New(g)
	root := d.Root()
	cuts := d.Cuts(root)
	if len(cuts) != 4 {
		t.Fatalf("chain of 4: %d cuts, want 4 (every op)", len(cuts))
	}
	splits := d.SeriesSplits(root)
	if len(splits) != 3 {
		t.Fatalf("chain of 4: %d series splits, want 3", len(splits))
	}
	for _, s := range splits {
		if !s.Series {
			t.Error("series split not marked Series")
		}
		if s.Left.Len()+s.Right.Len() != 4 || !s.Left.Disjoint(s.Right) {
			t.Errorf("split not a partition: %v | %v", s.Left, s.Right)
		}
		// All edges must go Left -> Right.
		if g.HasEdgeBetween(s.Right, s.Left) {
			t.Errorf("backward edge across series split %v | %v", s.Left, s.Right)
		}
	}
	if len(d.ParallelSplits(root)) != 0 {
		t.Error("chain should have no parallel splits")
	}
	if d.IsAtom(root) {
		t.Error("chain of 4 should not be an atom")
	}
}

func TestSingleOpIsAtom(t *testing.T) {
	g := chain(t, 3)
	d := New(g)
	z := graph.NodeSetOf(1)
	if !d.IsAtom(z) {
		t.Error("single op should be an atom")
	}
	if len(d.Cuts(z)) != 0 || len(d.SeriesSplits(z)) != 0 {
		t.Error("single op should have no cuts or splits")
	}
}

func TestBranchDecomposition(t *testing.T) {
	g := branches(t, 3, 2) // in + out + 6 branch ops
	d := New(g)
	root := d.Root()

	cuts := d.Cuts(root)
	// Only the global source and sink cut all paths.
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want [in out]", cuts)
	}
	splits := d.SeriesSplits(root)
	// ({in}, rest) and (rest, {out}).
	if len(splits) != 2 {
		t.Fatalf("series splits = %d, want 2", len(splits))
	}

	// Peel the input: the remainder {branches + out}: cut at out.
	var rest graph.NodeSet
	for _, s := range splits {
		if s.Left.Len() == 1 {
			rest = s.Right
		}
	}
	if rest.Empty() {
		t.Fatal("no ({in}, rest) split found")
	}
	restSplits := d.SeriesSplits(rest)
	if len(restSplits) != 1 {
		t.Fatalf("rest splits = %d, want 1 (before out)", len(restSplits))
	}
	branchZone := restSplits[0].Left

	comps := d.Components(branchZone)
	if len(comps) != 3 {
		t.Fatalf("branch zone components = %d, want 3", len(comps))
	}
	for _, c := range comps {
		if c.Len() != 2 {
			t.Errorf("component size = %d, want 2", c.Len())
		}
	}
	psplits := d.ParallelSplits(branchZone)
	if len(psplits) != 2 {
		t.Fatalf("parallel splits = %d, want 2 (contiguous groupings)", len(psplits))
	}
	for _, s := range psplits {
		if g.HasEdgeBetween(s.Left, s.Right) || g.HasEdgeBetween(s.Right, s.Left) {
			t.Error("parallel split parts must share no edges")
		}
		if s.Series {
			t.Error("parallel split marked Series")
		}
	}
}

func TestBranchComponentIsChain(t *testing.T) {
	g := branches(t, 2, 3)
	d := New(g)
	// Zone = first branch ops only.
	rest := d.SeriesSplits(d.Root())[0].Right // rest after {in}
	pre := d.SeriesSplits(rest)[0].Left       // branches without out
	comp := d.Components(pre)[0]
	if comp.Len() != 3 {
		t.Fatalf("component len = %d", comp.Len())
	}
	if got := len(d.SeriesSplits(comp)); got != 2 {
		t.Errorf("branch chain of 3: %d series splits, want 2", got)
	}
}

func TestDiamondSharedEndpoints(t *testing.T) {
	// in -> {b, c} -> out where branches are single ops.
	g := branches(t, 2, 1)
	d := New(g)
	root := d.Root()
	if len(d.Cuts(root)) != 2 {
		t.Fatalf("diamond cuts = %v", d.Cuts(root))
	}
	// Recurse: {in} | {b,c,out} then {b,c} | {out} then parallel {b}|{c},
	// plus the sink-anchored split {b} | {c,out}.
	n := d.CountZones()
	// Zones: root, {in}, {b,c,out}, {b,c}, {out}, {b}, {c},
	// {in,b,c} (left of before-out), and {c,out} (sink-anchored) = 9.
	if n != 9 {
		t.Errorf("CountZones = %d, want 9", n)
	}
}

func TestZoneCountPolynomialInBranches(t *testing.T) {
	// The partitioner's complexity hinges on the zone count being
	// polynomial: roughly (per-branch chain zones) x branches + spine.
	for _, nb := range []int{2, 4, 8} {
		g := branches(t, nb, 4)
		d := New(g)
		n := d.CountZones()
		// Each branch chain of 4 has 4*5/2 = 10 interval zones; spine adds
		// O(nb) grouped zones. Generous bound: 20*nb + 40.
		if n > 20*nb+40 {
			t.Errorf("nb=%d: zone count %d looks super-polynomial", nb, n)
		}
	}
}

func TestSplitsPreserveConvexity(t *testing.T) {
	g := branches(t, 3, 3)
	d := New(g)
	var walk func(z graph.NodeSet)
	seen := map[string]bool{}
	walk = func(z graph.NodeSet) {
		if seen[z.Key()] {
			return
		}
		seen[z.Key()] = true
		if !g.InducedConvex(z) {
			t.Fatalf("zone %v not convex", z)
		}
		for _, s := range append(d.SeriesSplits(z), d.ParallelSplits(z)...) {
			if !s.Left.Union(s.Right).Equal(z) {
				t.Fatalf("split of %v is not a partition", z)
			}
			if !s.Left.Disjoint(s.Right) {
				t.Fatalf("split parts overlap in %v", z)
			}
			walk(s.Left)
			walk(s.Right)
		}
	}
	walk(d.Root())
}

func TestSeriesSplitEdgesForwardOnly(t *testing.T) {
	g := branches(t, 4, 3)
	d := New(g)
	seen := map[string]bool{}
	var walk func(z graph.NodeSet)
	walk = func(z graph.NodeSet) {
		if seen[z.Key()] {
			return
		}
		seen[z.Key()] = true
		for _, s := range d.SeriesSplits(z) {
			if g.HasEdgeBetween(s.Right, s.Left) {
				t.Fatalf("series split of %v has a backward edge", z)
			}
			if !g.HasEdgeBetween(s.Left, s.Right) {
				t.Fatalf("series split of %v has no forward edge", z)
			}
			walk(s.Left)
			walk(s.Right)
		}
		for _, s := range d.ParallelSplits(z) {
			if g.HasEdgeBetween(s.Right, s.Left) {
				t.Fatalf("parallel split of %v has backward cross edges", z)
			}
			if !s.SinkAnchored && g.HasEdgeBetween(s.Left, s.Right) {
				t.Fatalf("plain parallel split of %v has cross edges", z)
			}
			if s.SinkAnchored {
				// All Left → Right edges must target the merge operator.
				if !s.Right.Contains(s.MergeOp) {
					t.Fatalf("anchored split's MergeOp not in Right")
				}
				for _, v := range s.Left.IDs() {
					for _, w := range g.Succ(v) {
						if s.Right.Contains(w) && w != s.MergeOp {
							t.Fatalf("anchored split leaks edge %d->%d past the merge op", v, w)
						}
					}
				}
			}
			walk(s.Left)
			walk(s.Right)
		}
	}
	walk(d.Root())
}

func TestSinkAnchoredSplits(t *testing.T) {
	g := branches(t, 3, 2)
	d := New(g)
	// Peel the shared input; the remaining zone {branches ∪ concat} has a
	// unique sink joining otherwise-independent branches.
	var zone graph.NodeSet
	for _, s := range d.SeriesSplits(d.Root()) {
		if s.Left.Len() == 1 {
			zone = s.Right
		}
	}
	if zone.Empty() {
		t.Fatal("no ({input}, rest) split")
	}
	var anchored []Split
	for _, s := range d.ParallelSplits(zone) {
		if s.SinkAnchored {
			anchored = append(anchored, s)
		}
	}
	if len(anchored) != 2 {
		t.Fatalf("anchored splits = %d, want 2 (contiguous groupings of 3 branches)", len(anchored))
	}
	sink := d.Sinks(zone)[0]
	for _, s := range anchored {
		if !s.Right.Contains(sink) {
			t.Errorf("anchored split keeps sink in Left: %v | %v", s.Left, s.Right)
		}
		if !s.Left.Union(s.Right).Equal(zone) || !s.Left.Disjoint(s.Right) {
			t.Errorf("anchored split is not a partition of the zone")
		}
		if !g.InducedConvex(s.Left) || !g.InducedConvex(s.Right) {
			t.Errorf("anchored split parts not convex")
		}
	}
	// The right part (branch + sink) decomposes in series, enabling a
	// stage that holds a branch tail together with the merge operator
	// (§7.5).
	last := anchored[len(anchored)-1]
	if len(d.SeriesSplits(last.Right)) == 0 && len(d.ParallelSplits(last.Right)) == 0 {
		t.Error("anchored right part should decompose further")
	}
}

func TestSourcesSinksOfZone(t *testing.T) {
	g := branches(t, 2, 2)
	d := New(g)
	root := d.Root()
	if s := d.Sources(root); len(s) != 1 || g.Op(s[0]).Kind != graph.OpInput {
		t.Errorf("root sources = %v", s)
	}
	if s := d.Sinks(root); len(s) != 1 || g.Op(s[0]).Kind != graph.OpConcat {
		t.Errorf("root sinks = %v", s)
	}
	// Branch zone has two sources and two sinks.
	rest := d.SeriesSplits(root)[0].Right
	pre := d.SeriesSplits(rest)[0].Left
	if s := d.Sources(pre); len(s) != 2 {
		t.Errorf("branch zone sources = %v", s)
	}
	if s := d.Sinks(pre); len(s) != 2 {
		t.Errorf("branch zone sinks = %v", s)
	}
}

func TestNonSPGraphFallsBackToAtom(t *testing.T) {
	// A "crossing" graph that is not node-series-parallel:
	// in -> a, in -> b; a -> c, a -> d; b -> d; c -> out, d -> out.
	// The zone {a,b,c,d} has no cut and is weakly connected, so it must be
	// an atom rather than decomposing incorrectly.
	b := graph.NewBuilder("nonsp")
	in := b.AddOp(graph.Op{Name: "in"})
	a := b.AddOp(graph.Op{Name: "a"})
	bb := b.AddOp(graph.Op{Name: "b"})
	c := b.AddOp(graph.Op{Name: "c"})
	dd := b.AddOp(graph.Op{Name: "d"})
	out := b.AddOp(graph.Op{Name: "out"})
	b.Connect(in, a)
	b.Connect(in, bb)
	b.Connect(a, c)
	b.Connect(a, dd)
	b.Connect(bb, dd)
	b.Connect(c, out)
	b.Connect(dd, out)
	g := b.MustBuild()
	d := New(g)
	mid := graph.NodeSetOf(a, bb, c, dd)
	if !d.IsAtom(mid) {
		t.Errorf("crossing zone should be an atom; series=%v parallel=%v",
			d.SeriesSplits(mid), d.ParallelSplits(mid))
	}
	// The root still series-splits around it.
	if len(d.SeriesSplits(d.Root())) != 2 {
		t.Errorf("root splits = %d, want 2", len(d.SeriesSplits(d.Root())))
	}
}

func TestMemoization(t *testing.T) {
	g := branches(t, 2, 2)
	d := New(g)
	a := d.SeriesSplits(d.Root())
	b := d.SeriesSplits(d.Root())
	if &a[0] != &b[0] {
		// Same backing array implies the memo hit.
		t.Error("SeriesSplits not memoized")
	}
}

func TestLinearizedSplitsOnNonSPZone(t *testing.T) {
	// The crossing graph from TestNonSPGraphFallsBackToAtom: zone
	// {a,b,c,d} is a non-SP atom; LinearizedSplits must offer chain cuts.
	b := graph.NewBuilder("nonsp2")
	in := b.AddOp(graph.Op{Name: "in"})
	a := b.AddOp(graph.Op{Name: "a"})
	bb := b.AddOp(graph.Op{Name: "b"})
	c := b.AddOp(graph.Op{Name: "c"})
	dd := b.AddOp(graph.Op{Name: "d"})
	out := b.AddOp(graph.Op{Name: "out"})
	b.Connect(in, a)
	b.Connect(in, bb)
	b.Connect(a, c)
	b.Connect(a, dd)
	b.Connect(bb, dd)
	b.Connect(c, out)
	b.Connect(dd, out)
	g := b.MustBuild()
	d := New(g)
	mid := graph.NodeSetOf(a, bb, c, dd)
	if !d.IsAtom(mid) {
		t.Fatal("test premise: zone must be a non-SP atom")
	}
	splits := d.LinearizedSplits(mid)
	if len(splits) != 3 {
		t.Fatalf("linearized splits = %d, want 3", len(splits))
	}
	for _, s := range splits {
		if !s.Left.Union(s.Right).Equal(mid) || !s.Left.Disjoint(s.Right) {
			t.Error("linearized split not a partition")
		}
		if g.HasEdgeBetween(s.Right, s.Left) {
			t.Error("linearized split has a backward edge")
		}
	}
	// Decomposable zones and single ops return nil.
	if d.LinearizedSplits(graph.NodeSetOf(a)) != nil {
		t.Error("single op should have no linearized splits")
	}
	if d.LinearizedSplits(d.Root()) != nil {
		t.Error("decomposable zone should not use the fallback")
	}
}
