package spgraph_test

import (
	"testing"

	"graphpipe/internal/graph"
	"graphpipe/internal/spgraph"
	"graphpipe/internal/synth"
)

// TestSynthFamiliesDecompose sweeps the decomposer across every
// synthetic family: the hand-built shapes above pin individual split
// rules, and this pins the same structural contracts — splits partition
// the zone into convex halves, series edges only run forward, parallel
// halves share no edges — on the generated corpus shapes the planners
// are conformance-tested against.
func TestSynthFamiliesDecompose(t *testing.T) {
	for _, fam := range synth.Families() {
		for seed := int64(0); seed < 3; seed++ {
			g, rs, err := synth.Generate(synth.Spec{Family: fam, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			if err := spgraph.Validate(g); err != nil {
				t.Fatalf("%s: %v", rs, err)
			}
			d := spgraph.New(g)
			seen := map[string]bool{}
			var walk func(z graph.NodeSet)
			walk = func(z graph.NodeSet) {
				if seen[z.Key()] {
					return
				}
				seen[z.Key()] = true
				splits := append(append([]spgraph.Split(nil), d.SeriesSplits(z)...), d.ParallelSplits(z)...)
				if len(splits) == 0 && z.Len() > 1 && d.LinearizedSplits(z) != nil {
					t.Errorf("%s: zone %v needed the non-SP linearization fallback", rs, z)
				}
				for _, sp := range splits {
					if !sp.Left.Disjoint(sp.Right) || sp.Left.Union(sp.Right).Len() != z.Len() {
						t.Fatalf("%s: split does not partition zone %v", rs, z)
					}
					if !g.InducedConvex(sp.Left) || !g.InducedConvex(sp.Right) {
						t.Fatalf("%s: non-convex split of %v", rs, z)
					}
					if sp.Series && g.HasEdgeBetween(sp.Right, sp.Left) {
						t.Fatalf("%s: series split with a backward edge in %v", rs, z)
					}
					switch {
					case sp.Series:
					case sp.SinkAnchored:
						// The merge tail inside Right consumes Left's branch
						// outputs, so Left→Right edges are the point; the
						// reverse direction must stay empty.
						if g.HasEdgeBetween(sp.Right, sp.Left) {
							t.Fatalf("%s: sink-anchored split with a backward edge in %v", rs, z)
						}
					default:
						if g.HasEdgeBetween(sp.Left, sp.Right) || g.HasEdgeBetween(sp.Right, sp.Left) {
							t.Fatalf("%s: parallel split with crossing edges in %v", rs, z)
						}
					}
					walk(sp.Left)
					walk(sp.Right)
				}
			}
			walk(d.Root())
		}
	}
}
