// Package spgraph implements the series-parallel decomposition GraphPipe's
// pipeline stage partitioner is built on (§5). Most DNNs structurally
// reflect series-parallel graphs; the partitioner's dynamic program
// repeatedly splits the computation graph into two subgraphs either in
// series (at a cut operator every source→sink path passes through) or in
// parallel (groups of branches with no mutual data dependencies).
//
// Subgraphs are represented as "zones": convex node sets of the underlying
// computation graph. A zone admits
//
//   - series splits (Z1, Z2) where every edge between the parts is directed
//     Z1 → Z2 and the boundary is a cut operator of the zone, and
//   - parallel splits (Z1, Z2) where the parts are unions of weakly
//     connected components of the zone and share no edges at all.
//
// Both sides of any split are again convex, so the partitioner can recurse.
// Parallel components are ordered canonically (by smallest operator id) and
// parallel splits are contiguous groupings in that order; for the paper's
// workloads all branches in a group are structurally identical, so this
// keeps the DP polynomial without discarding useful strategies (see
// DESIGN.md).
package spgraph

import (
	"fmt"
	"sort"

	"graphpipe/internal/graph"
)

// Split is a binary decomposition of a zone into two disjoint parts whose
// union is the original zone.
type Split struct {
	Left, Right graph.NodeSet
	// Series is true for a series split (all edges Left → Right) and false
	// for a parallel split (no edges between the parts).
	Series bool
	// SinkAnchored marks a parallel split of a zone whose merge tail
	// (everything from the first cut operator onward, e.g. concat + head)
	// stays with the Right part, so a pipeline stage can contain both the
	// tail of a branch and the merge operator — §7.5: "one stage
	// necessarily contains the concatenation operator". Left's stages
	// feed the stage holding MergeOp inside Right.
	SinkAnchored bool
	// MergeOp is the tail's entry operator (the zone's first cut) for
	// sink-anchored splits.
	MergeOp graph.NodeID
}

// Decomposer computes and memoizes decompositions of zones of a single
// computation graph. It is not safe for concurrent use.
type Decomposer struct {
	g    *graph.Graph
	memo map[string]*zoneInfo
}

type zoneInfo struct {
	cuts     []graph.NodeID // cut operators in topological order
	comps    []graph.NodeSet
	series   []Split
	parallel []Split
}

// New returns a Decomposer for g.
func New(g *graph.Graph) *Decomposer {
	return &Decomposer{g: g, memo: make(map[string]*zoneInfo)}
}

// Graph returns the underlying computation graph.
func (d *Decomposer) Graph() *graph.Graph { return d.g }

// Root returns the zone covering the entire computation graph.
func (d *Decomposer) Root() graph.NodeSet { return d.g.AllNodes() }

func (d *Decomposer) info(zone graph.NodeSet) *zoneInfo {
	key := zone.Key()
	if zi, ok := d.memo[key]; ok {
		return zi
	}
	zi := d.analyze(zone)
	zi.primeFingerprints()
	d.memo[key] = zi
	return zi
}

// primeFingerprints computes the cached NodeSet fingerprint of every set the
// decomposer will hand out. Split sets flow by value into the planner's zone
// table and from there into cost-model cache keys; priming them here means
// each distinct zone is hashed exactly once for the lifetime of the
// decomposition, and every downstream lookup reuses the cached value.
func (zi *zoneInfo) primeFingerprints() {
	for i := range zi.comps {
		zi.comps[i].Fingerprint()
	}
	for i := range zi.series {
		zi.series[i].Left.Fingerprint()
		zi.series[i].Right.Fingerprint()
	}
	for i := range zi.parallel {
		zi.parallel[i].Left.Fingerprint()
		zi.parallel[i].Right.Fingerprint()
	}
}

// sourcesIn returns the nodes of zone with no predecessor inside zone.
func (d *Decomposer) sourcesIn(zone graph.NodeSet) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range zone.IDs() {
		has := false
		for _, p := range d.g.Pred(v) {
			if zone.Contains(p) {
				has = true
				break
			}
		}
		if !has {
			out = append(out, v)
		}
	}
	return out
}

// sinksIn returns the nodes of zone with no successor inside zone.
func (d *Decomposer) sinksIn(zone graph.NodeSet) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range zone.IDs() {
		has := false
		for _, s := range d.g.Succ(v) {
			if zone.Contains(s) {
				has = true
				break
			}
		}
		if !has {
			out = append(out, v)
		}
	}
	return out
}

// Sources exposes the zone's internal sources (operators whose inputs all
// come from outside the zone).
func (d *Decomposer) Sources(zone graph.NodeSet) []graph.NodeID { return d.sourcesIn(zone) }

// Sinks exposes the zone's internal sinks.
func (d *Decomposer) Sinks(zone graph.NodeSet) []graph.NodeID { return d.sinksIn(zone) }

// reachableWithin returns nodes of zone reachable from start, staying inside
// zone and excluding the removed node.
func (d *Decomposer) reachableWithin(zone graph.NodeSet, start []graph.NodeID, removed graph.NodeID) graph.NodeSet {
	seen := graph.NewNodeSet(d.g.Len())
	stack := make([]graph.NodeID, 0, len(start))
	for _, s := range start {
		if s != removed && zone.Contains(s) {
			seen.Add(s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range d.g.Succ(v) {
			if w == removed || !zone.Contains(w) || seen.Contains(w) {
				continue
			}
			seen.Add(w)
			stack = append(stack, w)
		}
	}
	return seen
}

// Cuts returns the zone's cut operators in topological order: operators v
// such that every path from a source of the zone to a sink of the zone
// passes through v. A single source (or sink) is always a cut.
func (d *Decomposer) Cuts(zone graph.NodeSet) []graph.NodeID {
	return d.info(zone).cuts
}

// Components returns the weakly connected components of the zone in
// canonical order (ascending smallest operator id).
func (d *Decomposer) Components(zone graph.NodeSet) []graph.NodeSet {
	return d.info(zone).comps
}

// SeriesSplits returns the zone's series splits. The list is empty when the
// zone has no proper cut boundary (e.g. it is a single operator or a purely
// parallel bundle of branches).
func (d *Decomposer) SeriesSplits(zone graph.NodeSet) []Split {
	return d.info(zone).series
}

// ParallelSplits returns the zone's parallel splits: contiguous groupings
// of its weakly connected components. Empty when the zone is connected.
func (d *Decomposer) ParallelSplits(zone graph.NodeSet) []Split {
	return d.info(zone).parallel
}

// IsAtom reports whether the zone cannot be decomposed further and must be
// treated as a single pipeline stage.
func (d *Decomposer) IsAtom(zone graph.NodeSet) bool {
	zi := d.info(zone)
	return len(zi.series) == 0 && len(zi.parallel) == 0
}

// LinearizedSplits handles the unusual non-series-parallel zones (§5: "In
// the unusual cases where a DNN does not possess such a structural
// property, GraphPipe bypasses this issue by converting the DNN to an
// arithmetically identical one whose structure is a series-parallel
// graph"). The conversion here is a fixed topological linearization of the
// zone: every prefix/suffix cut of that order is a valid series boundary
// (all operator edges cross forward), which reduces the zone to the chain
// the baselines would plan — strictly better than treating it as one
// indivisible stage. Returns nil for zones that decompose normally.
func (d *Decomposer) LinearizedSplits(zone graph.NodeSet) []Split {
	if zone.Len() < 2 || !d.IsAtom(zone) {
		return nil
	}
	// Zone-local topological order: global topo restricted to the zone.
	var order []graph.NodeID
	for _, v := range d.g.Topo() {
		if zone.Contains(v) {
			order = append(order, v)
		}
	}
	var out []Split
	left := graph.NewNodeSet(d.g.Len())
	for i := 0; i+1 < len(order); i++ {
		left.Add(order[i])
		right := zone.Minus(left)
		sp := Split{Left: left.Clone(), Right: right, Series: true}
		sp.Left.Fingerprint()
		sp.Right.Fingerprint()
		out = append(out, sp)
	}
	return out
}

func (d *Decomposer) analyze(zone graph.NodeSet) *zoneInfo {
	zi := &zoneInfo{}
	n := zone.Len()
	if n == 0 {
		return zi
	}
	zi.comps = d.components(zone)
	if n == 1 {
		return zi
	}

	sources := d.sourcesIn(zone)
	sinks := d.sinksIn(zone)
	sinkSet := graph.NewNodeSet(d.g.Len())
	for _, s := range sinks {
		sinkSet.Add(s)
	}

	// Cut detection: v is a cut iff with v removed, no sink of the zone is
	// reachable from any source of the zone. O(|Z|·E) per zone; zones are
	// memoized and model graphs are small.
	var cuts []graph.NodeID
	if len(zi.comps) == 1 { // cuts only exist in connected zones
		for _, v := range zone.IDs() {
			reach := d.reachableWithin(zone, sources, v)
			if reach.Intersect(sinkSet).Empty() {
				cuts = append(cuts, v)
			}
		}
		sort.Slice(cuts, func(i, j int) bool {
			return d.g.TopoPos(cuts[i]) < d.g.TopoPos(cuts[j])
		})
	}
	zi.cuts = cuts

	// Series splits: each cut c partitions the zone into strict ancestors,
	// {c}, and strict descendants (every zone member is comparable to a
	// cut). Both (anc, {c} ∪ desc) and (anc ∪ {c}, desc) are valid series
	// boundaries; adjacent cuts produce duplicate splits, deduped by key.
	seenSplit := make(map[string]bool)
	for _, c := range cuts {
		descSelf := d.reachableWithin(zone, []graph.NodeID{c}, -1)
		anc := zone.Minus(descSelf)
		desc := descSelf.Clone()
		desc.Remove(c)

		if !anc.Empty() {
			right := descSelf
			if k := anc.Key(); !seenSplit[k] {
				seenSplit[k] = true
				zi.series = append(zi.series, Split{Left: anc, Right: right, Series: true})
			}
		}
		if !desc.Empty() {
			left := anc.Clone()
			left.Add(c)
			if k := left.Key(); !seenSplit[k] {
				seenSplit[k] = true
				zi.series = append(zi.series, Split{Left: left, Right: desc, Series: true})
			}
		}
	}
	sort.Slice(zi.series, func(i, j int) bool { return zi.series[i].Left.Len() < zi.series[j].Left.Len() })

	// Parallel splits: contiguous groupings of the canonical component
	// order.
	if m := len(zi.comps); m >= 2 {
		for k := 1; k < m; k++ {
			left := graph.NewNodeSet(d.g.Len())
			for i := 0; i < k; i++ {
				left = left.Union(zi.comps[i])
			}
			right := graph.NewNodeSet(d.g.Len())
			for i := k; i < m; i++ {
				right = right.Union(zi.comps[i])
			}
			zi.parallel = append(zi.parallel, Split{Left: left, Right: right})
		}
	}

	// Sink-anchored parallel splits: a connected zone whose merge tail
	// joins otherwise-independent branches also splits in parallel, with
	// the tail travelling with the last branch group. The tail is
	// everything from the zone's first cut operator onward (for a
	// branches→concat→head zone: {concat, head}); removing it leaves the
	// branch components. This lets a stage combine a branch tail with the
	// merge operator, as the paper's partitions do (§7.5), and lets a
	// whole branch group plus the merge tail form one balanced stage.
	if len(zi.comps) == 1 && len(cuts) > 0 {
		tail := d.reachableWithin(zone, cuts[:1], -1) // desc-or-self of first cut
		inner := zone.Minus(tail)
		if !inner.Empty() {
			branchComps := d.components(inner)
			if m := len(branchComps); m >= 2 {
				for k := 1; k < m; k++ {
					left := graph.NewNodeSet(d.g.Len())
					for i := 0; i < k; i++ {
						left = left.Union(branchComps[i])
					}
					right := tail.Clone()
					for i := k; i < m; i++ {
						right = right.Union(branchComps[i])
					}
					zi.parallel = append(zi.parallel, Split{Left: left, Right: right, SinkAnchored: true, MergeOp: cuts[0]})
				}
			}
		}
	}
	return zi
}

// components computes weakly connected components of zone in canonical
// order.
func (d *Decomposer) components(zone graph.NodeSet) []graph.NodeSet {
	ids := zone.IDs()
	if len(ids) == 0 {
		return nil
	}
	visited := graph.NewNodeSet(d.g.Len())
	var comps []graph.NodeSet
	for _, start := range ids {
		if visited.Contains(start) {
			continue
		}
		comp := graph.NewNodeSet(d.g.Len())
		stack := []graph.NodeID{start}
		comp.Add(start)
		visited.Add(start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range d.g.Succ(v) {
				if zone.Contains(w) && !visited.Contains(w) {
					visited.Add(w)
					comp.Add(w)
					stack = append(stack, w)
				}
			}
			for _, w := range d.g.Pred(v) {
				if zone.Contains(w) && !visited.Contains(w) {
					visited.Add(w)
					comp.Add(w)
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	// ids are iterated ascending, so comps are already ordered by smallest
	// member; keep an explicit sort for clarity.
	sort.Slice(comps, func(i, j int) bool {
		return comps[i].IDs()[0] < comps[j].IDs()[0]
	})
	return comps
}

// Validate checks that the computation graph meets the partitioner's
// structural requirements: at least one source, and a single global sink
// (training has one loss). Multiple sources are natural — each branch of a
// multi-modal model reads its own modality — and the decomposer's cut and
// component machinery handles them directly.
func Validate(g *graph.Graph) error {
	if n := len(g.Sources()); n < 1 {
		return fmt.Errorf("spgraph: graph %q has no sources", g.Name())
	}
	if n := len(g.Sinks()); n != 1 {
		return fmt.Errorf("spgraph: graph %q has %d sinks, want 1 (add a virtual output)", g.Name(), n)
	}
	return nil
}

// CountZones exhaustively counts the distinct zones reachable from the root
// by recursive series/parallel splitting. It is the N of the partitioner's
// complexity analysis (§5) and is used in tests to confirm the DP state
// space stays polynomial.
func (d *Decomposer) CountZones() int {
	seen := map[string]bool{}
	var walk func(z graph.NodeSet)
	walk = func(z graph.NodeSet) {
		k := z.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		for _, s := range d.SeriesSplits(z) {
			walk(s.Left)
			walk(s.Right)
		}
		for _, s := range d.ParallelSplits(z) {
			walk(s.Left)
			walk(s.Right)
		}
	}
	walk(d.Root())
	return len(seen)
}
