#!/usr/bin/env bash
# service_smoke.sh — boot cmd/graphpiped against a scratch cache dir and
# drive its HTTP API the way CI (and a curious operator) would: plan cold,
# re-plan warm, check the two responses are byte-identical and the warm
# one was a cache hit, evaluate by fingerprint, read stats, and shut the
# daemon down with SIGTERM. Exits non-zero on the first broken invariant.
#
# Usage: scripts/service_smoke.sh [port]   (default: 8791)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-8791}"
base="http://127.0.0.1:$port"
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/graphpiped" ./cmd/graphpiped

echo "== boot on :$port (cache dir $work/cache)"
"$work/graphpiped" -addr "127.0.0.1:$port" -cache-dir "$work/cache" &
daemon_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/v1/stats" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/v1/stats" >/dev/null || { echo "daemon never came up"; exit 1; }

req='{"model":"case-study","devices":4}'

echo "== cold plan"
curl -fsS -D "$work/cold.h" -o "$work/cold.json" -X POST "$base/v1/plan" -d "$req"
grep -i '^x-graphpipe-cache: miss' "$work/cold.h" \
  || { echo "cold request was not a miss:"; cat "$work/cold.h"; exit 1; }
fp="$(sed -n 's/^[Xx]-[Gg]raphpipe-[Ff]ingerprint: *//p' "$work/cold.h" | tr -d '\r')"
[[ ${#fp} -eq 64 ]] || { echo "bad fingerprint header: '$fp'"; exit 1; }
echo "   fingerprint $fp"

echo "== warm re-plan (must be a cache hit, byte-identical)"
curl -fsS -D "$work/warm.h" -o "$work/warm.json" -X POST "$base/v1/plan" -d "$req"
grep -i '^x-graphpipe-cache: hit-memory' "$work/warm.h" \
  || { echo "warm request was not a memory hit:"; cat "$work/warm.h"; exit 1; }
cmp "$work/cold.json" "$work/warm.json" \
  || { echo "warm response differs from cold response"; exit 1; }

echo "== artifact fetch + eval by fingerprint"
curl -fsS -o "$work/art.json" "$base/v1/artifacts/$fp"
cmp "$work/cold.json" "$work/art.json" || { echo "artifact endpoint differs"; exit 1; }
curl -fsS -X POST "$base/v1/eval" -d "{\"fingerprint\":\"$fp\"}" | tee "$work/eval.json"
grep -q '"throughput"' "$work/eval.json" || { echo "eval returned no throughput"; exit 1; }

echo "== stats must show the hit/miss split"
curl -fsS "$base/v1/stats" | tee "$work/stats.json"
# ≥ 1: the warm re-plan, plus the artifact fetch and fingerprint eval,
# each count as a memory hit.
grep -q '"hits_memory": *[1-9]' "$work/stats.json" || { echo "stats missing the warm hit"; exit 1; }
grep -q '"planned": *1' "$work/stats.json" || { echo "stats planned != 1"; exit 1; }

echo "== on-disk artifact is CLI-compatible"
go run ./cmd/graphpipe eval "$work/cache/$fp.json" \
  | grep -q "fingerprint $fp" || { echo "CLI disagrees about the fingerprint"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
echo "service smoke OK"
