#!/usr/bin/env bash
# bench.sh — run the paper-evaluation benchmark suite once and record the
# parsed metrics (search seconds, samples/s, depths, speedups) in a JSON
# report the repository commits, so every PR leaves a perf trajectory.
#
# Usage:
#   scripts/bench.sh [label] [output.json] [note]
#
#   label   run label inside the report (default: after)
#   output  report file to merge into   (default: BENCH_PR3.json)
#   note    free-form note stored with the run
#
# Typical workflow for a perf PR:
#   git stash        # or checkout the base commit
#   scripts/bench.sh before BENCH_PRn.json "base: <sha>"
#   git stash pop
#   scripts/bench.sh after  BENCH_PRn.json "with <change>"
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${2:-BENCH_PR3.json}"
note="${3:-}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x: each benchmark plans and simulates once — the harness
# reports its own wall-clock metrics, so more iterations only cost time.
go test -run '^$' -bench . -benchtime=1x . | tee "$tmp"
# The serving-layer pair (service_plan_cold_s vs service_plan_warm_s)
# runs more iterations: a warm hit is microseconds, so one iteration
# would mostly measure timer noise.
go test -run '^$' -bench ServicePlan -benchtime=20x ./internal/service | tee -a "$tmp"
# The elastic-replan pairs are re-run averaged over three sweeps (later
# lines supersede the 1x numbers above): one sweep's wall-clock is noisy
# enough to blur the warm/cold ratio the report gates on.
go test -run '^$' -bench Replan -benchtime=3x . | tee -a "$tmp"

# Fleet replay: boot a three-shard fleet with peer cache-fill behind the
# router and drive it with a Zipf-skewed fleetgen mix, so the report
# carries serving-fleet numbers (fleet_p50_s/p99_s, hit ratio, peer
# fills, shed rate) next to the planner microbenchmarks. Same topology
# as scripts/fleet_smoke.sh, sized for measurement instead of smoke.
fleet_port="${FLEET_BENCH_PORT:-8894}"
fleet_dir="$(mktemp -d)"
fleet_pids=()
cleanup_fleet() {
  for pid in "${fleet_pids[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  fleet_pids=()
  rm -rf "$fleet_dir"
}
trap 'rm -f "$tmp"; cleanup_fleet' EXIT

go build -o "$fleet_dir/graphpiped" ./cmd/graphpiped
go build -o "$fleet_dir/graphpipe-lb" ./cmd/graphpipe-lb
go build -o "$fleet_dir/fleetgen" ./cmd/fleetgen
fleet_peers=""
for i in 0 1 2; do
  fleet_peers="$fleet_peers,http://127.0.0.1:$((fleet_port + i))"
done
fleet_peers="${fleet_peers#,}"
for i in 0 1 2; do
  "$fleet_dir/graphpiped" -addr "127.0.0.1:$((fleet_port + i))" \
    -cache-dir "$fleet_dir/cache$i" \
    -self "http://127.0.0.1:$((fleet_port + i))" -peers "$fleet_peers" >/dev/null 2>&1 &
  fleet_pids+=($!)
done
lb_url="http://127.0.0.1:$((fleet_port + 3))"
"$fleet_dir/graphpipe-lb" -addr "127.0.0.1:$((fleet_port + 3))" \
  -backends "$fleet_peers" >/dev/null 2>&1 &
fleet_pids+=($!)
for _ in $(seq 1 50); do
  curl -fsS "$lb_url/v1/stats" >/dev/null 2>&1 && break
  sleep 0.2
done
"$fleet_dir/fleetgen" -target "$lb_url" -requests 600 -concurrency 8 \
  -zipf 1.1 -population 16 -devices 2,4 -seed 7 -trace-sample 50 | tee -a "$tmp"
cleanup_fleet

# -check-warm / -check-fleet: the run fails outright if any warm replan
# did not beat its cold counterpart, or if the fleet's warm p99 did not
# beat a cold plan's median — caching and peer fill must pay for
# themselves.
go run ./cmd/benchreport -label "$label" -note "$note" -o "$out" -in "$tmp" -check-warm -check-fleet
