#!/usr/bin/env bash
# bench.sh — run the paper-evaluation benchmark suite once and record the
# parsed metrics (search seconds, samples/s, depths, speedups) in a JSON
# report the repository commits, so every PR leaves a perf trajectory.
#
# Usage:
#   scripts/bench.sh [label] [output.json] [note]
#
#   label   run label inside the report (default: after)
#   output  report file to merge into   (default: BENCH_PR3.json)
#   note    free-form note stored with the run
#
# Typical workflow for a perf PR:
#   git stash        # or checkout the base commit
#   scripts/bench.sh before BENCH_PRn.json "base: <sha>"
#   git stash pop
#   scripts/bench.sh after  BENCH_PRn.json "with <change>"
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${2:-BENCH_PR3.json}"
note="${3:-}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x: each benchmark plans and simulates once — the harness
# reports its own wall-clock metrics, so more iterations only cost time.
go test -run '^$' -bench . -benchtime=1x . | tee "$tmp"
# The serving-layer pair (service_plan_cold_s vs service_plan_warm_s)
# runs more iterations: a warm hit is microseconds, so one iteration
# would mostly measure timer noise.
go test -run '^$' -bench ServicePlan -benchtime=20x ./internal/service | tee -a "$tmp"
# The elastic-replan pairs are re-run averaged over three sweeps (later
# lines supersede the 1x numbers above): one sweep's wall-clock is noisy
# enough to blur the warm/cold ratio the report gates on.
go test -run '^$' -bench Replan -benchtime=3x . | tee -a "$tmp"
# -check-warm: the run fails outright if any warm replan did not beat its
# cold counterpart — warm-start snapshots must pay for themselves.
go run ./cmd/benchreport -label "$label" -note "$note" -o "$out" -in "$tmp" -check-warm
