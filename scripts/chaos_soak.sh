#!/usr/bin/env bash
# chaos_soak.sh — the black-box twin of internal/fleet's
# TestChaosSoakFleetDegradesAndRecovers: boot a three-shard fleet whose
# wires and disks are deliberately sick (seeded, windowed fault specs on
# every process), replay a paced workload through the router, and prove
# the fleet degrades instead of failing:
#
#   faulty phase  — bounded error rate, zero invalid 200 bodies, no
#                   request outliving its budget
#   drain phase   — fresh questions spend every fault window
#   clean phase   — the same seed-42 workload replays with zero errors
#
# Every fault decision derives from the seeds below; a failing run
# reproduces by re-running this script unchanged (see TESTING.md). On
# failure the fault schedule and a final /v1/stats dump land in the
# artifacts directory for the CI job to upload.
#
# Usage: scripts/chaos_soak.sh [base_port]          (default: 8930)
#   CHAOS_ARTIFACTS=dir   keep the fault schedule + stats dump here
#                         (default: the run's temp dir, removed on exit)
set -euo pipefail
cd "$(dirname "$0")/.."

base_port="${1:-8930}"
lb_port=$((base_port + 3))
lb="http://127.0.0.1:$lb_port"
work="$(mktemp -d)"
art="${CHAOS_ARTIFACTS:-$work}"
mkdir -p "$art"
pids=()

# Trap-based cleanup on any exit path: TERM first, then a bounded wait,
# then KILL for anything a fault left wedged. A failing soak must never
# leak daemons into the next CI step.
cleanup() {
  status=$?
  if [[ $status -ne 0 ]]; then
    echo "== chaos soak FAILED (status $status): dumping fleet stats to $art"
    curl -fsS --max-time 5 "$lb/v1/stats" > "$art/stats_failure.json" 2>/dev/null || true
  fi
  for pid in "${pids[@]:-}"; do
    [[ -n "$pid" ]] && kill -TERM "$pid" 2>/dev/null || true
  done
  for _ in $(seq 1 50); do
    alive=0
    for pid in "${pids[@]:-}"; do
      [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null && alive=1
    done
    [[ $alive -eq 0 ]] && break
    sleep 0.2
  done
  for pid in "${pids[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      echo "process $pid ignored SIGTERM; killing"
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$work"
  exit $status
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work/graphpiped" ./cmd/graphpiped
go build -o "$work/graphpipe-lb" ./cmd/graphpipe-lb
go build -o "$work/fleetgen" ./cmd/fleetgen

peers=""
for i in 0 1 2; do
  peers="$peers,http://127.0.0.1:$((base_port + i))"
done
peers="${peers#,}"

# The seeded fault schedule: five windowed kinds on the router's wire,
# peer-wire drops plus disk write faults on every shard. Recorded first
# so a failure always leaves its replay key behind.
router_spec='seed=11;window=240;http.latency=0.2:30ms;http.drop=0.05;http.err5xx=0.05;http.truncate=0.05;http.corrupt=0.03'
shard_spec() { echo "seed=$((100 + $1));window=40;http.drop=0.2;disk.write-fail=0.1;disk.write-partial=0.1"; }
{
  echo "router: $router_spec"
  for i in 0 1 2; do echo "shard$i: $(shard_spec "$i")"; done
} > "$art/fault_schedule.txt"
cat "$art/fault_schedule.txt"

echo "== boot 3 faulted shards ($peers)"
for i in 0 1 2; do
  port=$((base_port + i))
  "$work/graphpiped" -addr "127.0.0.1:$port" -cache-dir "$work/cache$i" \
    -self "http://127.0.0.1:$port" -peers "$peers" \
    -fault-spec "$(shard_spec "$i")" &
  pids+=($!)
done

echo "== boot faulted router on :$lb_port"
"$work/graphpipe-lb" -addr "127.0.0.1:$lb_port" -backends "$peers" \
  -health-interval 150ms -probe-jitter-seed 7 \
  -breaker-threshold 2 -breaker-open-for 50ms \
  -fault-spec "$router_spec" &
pids+=($!)

for url in ${peers//,/ } "$lb"; do
  up=""
  for _ in $(seq 1 50); do
    curl -fsS "$url/v1/stats" >/dev/null 2>&1 && { up=1; break; }
    sleep 0.2
  done
  [[ -n "$up" ]] || { echo "$url never came up"; exit 1; }
done

echo "== faulty phase: paced seed-42 replay under fire"
"$work/fleetgen" -target "$lb" -requests 320 -concurrency 4 -zipf 1.1 \
  -population 12 -seed 42 -budget-ms 3000 -pace 10ms \
  -verify-plans -max-error-rate 0.45 -o "$art/faulty_phase.json"

echo "== drain phase: fresh questions spend every fault window"
# 200 fresh questions (different seed, wider population) walk peers and
# write artifacts + memo shards on every shard: far more draws than any
# window (router 240, shards 40) has left.
"$work/fleetgen" -target "$lb" -requests 200 -concurrency 4 -zipf 0 \
  -population 64 -seed 777 -budget-ms 3000 -pace 5ms \
  -o "$art/drain_phase.json"
sleep 1 # let the last breaker-open window elapse and probes re-close

echo "== clean phase: the same workload must now run error-free"
"$work/fleetgen" -target "$lb" -requests 150 -concurrency 4 -zipf 1.1 \
  -population 12 -seed 42 -budget-ms 3000 -pace 10ms \
  -verify-plans -max-errors 0 -o "$art/clean_phase.json"

echo "== ledger: faults fired, breakers opened, everything closed now"
curl -fsS "$lb/v1/stats" > "$art/stats_final.json"
grep -q '"faults_injected"' "$art/stats_final.json" \
  || { echo "no faults_injected tallies in final stats"; exit 1; }
grep -m1 '"breaker_opens"' "$art/stats_final.json" | grep -vq '"breaker_opens": *0' \
  || { echo "no breaker ever opened:"; grep -m1 '"breaker_opens"' "$art/stats_final.json"; exit 1; }
if grep -E '"(open|half-open)"' "$art/stats_final.json" >/dev/null; then
  echo "a breaker is still open after the clean phase:"
  grep -B2 -A4 '"breakers"' "$art/stats_final.json" || true
  exit 1
fi

echo "== graceful shutdown (SIGTERM all)"
for pid in "${pids[@]}"; do
  kill -TERM "$pid"
done
for pid in "${pids[@]}"; do
  wait "$pid"
done
pids=()
echo "chaos soak OK"
