#!/usr/bin/env bash
# fleet_smoke.sh — boot a three-shard planning fleet (3x graphpiped with
# a shared ring + graphpipe-lb in front) and prove the PR's acceptance
# criteria from the outside: a plan computed cold on one shard is served
# byte-identically by every other shard via peer cache-fill with no
# second cold search, a skewed fleetgen replay meets its aggregate hit
# ratio, the warm fleet path beats a cold plan (benchreport -check-fleet),
# and the whole fleet drains cleanly on SIGTERM.
#
# Usage: scripts/fleet_smoke.sh [base_port]   (default: 8890)
set -euo pipefail
cd "$(dirname "$0")/.."

base_port="${1:-8890}"
lb_port=$((base_port + 3))
lb="http://127.0.0.1:$lb_port"
work="$(mktemp -d)"
pids=()

# Trap-based cleanup on any exit path (normal, failure, ^C, TERM):
# SIGTERM everything, wait bounded, then SIGKILL stragglers — a failing
# smoke must never leak daemons into the next CI step or shell.
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    [[ -n "$pid" ]] && kill -TERM "$pid" 2>/dev/null || true
  done
  for _ in $(seq 1 50); do
    alive=0
    for pid in "${pids[@]:-}"; do
      [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null && alive=1
    done
    [[ $alive -eq 0 ]] && break
    sleep 0.2
  done
  for pid in "${pids[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      echo "process $pid ignored SIGTERM; killing"
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$work"
  exit $status
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work/graphpiped" ./cmd/graphpiped
go build -o "$work/graphpipe-lb" ./cmd/graphpipe-lb
go build -o "$work/fleetgen" ./cmd/fleetgen
go build -o "$work/benchreport" ./cmd/benchreport

peers=""
for i in 0 1 2; do
  peers="$peers,http://127.0.0.1:$((base_port + i))"
done
peers="${peers#,}"

echo "== boot 3 shards ($peers)"
for i in 0 1 2; do
  port=$((base_port + i))
  "$work/graphpiped" -addr "127.0.0.1:$port" -cache-dir "$work/cache$i" \
    -self "http://127.0.0.1:$port" -peers "$peers" &
  pids+=($!)
done

echo "== boot router on :$lb_port"
"$work/graphpipe-lb" -addr "127.0.0.1:$lb_port" -backends "$peers" &
pids+=($!)

for url in ${peers//,/ } "$lb"; do
  up=""
  for _ in $(seq 1 50); do
    curl -fsS "$url/v1/stats" >/dev/null 2>&1 && { up=1; break; }
    sleep 0.2
  done
  [[ -n "$up" ]] || { echo "$url never came up"; exit 1; }
done

req='{"model":"case-study","devices":4}'

echo "== cold plan through the router"
curl -fsS -D "$work/cold.h" -o "$work/cold.json" -X POST "$lb/v1/plan" -d "$req"
grep -i '^x-graphpipe-cache: miss' "$work/cold.h" \
  || { echo "cold request was not a miss:"; cat "$work/cold.h"; exit 1; }
fp="$(sed -n 's/^[Xx]-[Gg]raphpipe-[Ff]ingerprint: *//p' "$work/cold.h" | tr -d '\r')"
[[ ${#fp} -eq 64 ]] || { echo "bad fingerprint header: '$fp'"; exit 1; }
owner="$(sed -n 's/^[Xx]-[Gg]raphpipe-[Bb]ackend: *//p' "$work/cold.h" | tr -d '\r')"
echo "   fingerprint $fp planned on $owner"

echo "== every shard serves the artifact byte-identically (peer fill)"
for url in ${peers//,/ }; do
  curl -fsS -o "$work/art.json" "$url/v1/artifacts/$fp"
  cmp "$work/cold.json" "$work/art.json" \
    || { echo "shard $url served different bytes for $fp"; exit 1; }
done

echo "== no second cold search: fleet planned exactly once, filled twice"
curl -fsS "$lb/v1/stats" > "$work/stats.json"
# The fleet-summed block renders first in the stats body, so the first
# occurrence of each counter is the fleet-wide value.
grep -m1 '"planned"' "$work/stats.json" | grep -q '"planned": *1' \
  || { echo "fleet planned != 1:"; grep -m1 '"planned"' "$work/stats.json"; exit 1; }
grep -m1 '"peer_fills"' "$work/stats.json" | grep -q '"peer_fills": *2' \
  || { echo "fleet peer_fills != 2:"; grep -m1 '"peer_fills"' "$work/stats.json"; exit 1; }

echo "== skewed replay through the router (fleetgen)"
"$work/fleetgen" -target "$lb" -requests 120 -concurrency 8 -zipf 1.2 \
  -population 8 -devices 2,4 -seed 7 -min-hit-ratio 0.5 -max-errors 0 \
  -o "$work/fleetgen.json" | tee "$work/fleet-bench.txt"

echo "== warm fleet path must beat a cold plan (benchreport -check-fleet)"
"$work/benchreport" -label fleet-smoke -note "fleet smoke" \
  -o "$work/fleet-bench.json" -in "$work/fleet-bench.txt" -check-fleet

echo "== graceful shutdown (SIGTERM all)"
for pid in "${pids[@]}"; do
  kill -TERM "$pid"
done
for pid in "${pids[@]}"; do
  wait "$pid"
done
pids=()
echo "fleet smoke OK"
