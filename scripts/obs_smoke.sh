#!/usr/bin/env bash
# obs_smoke.sh — boot the three-shard fleet with tracing on and prove
# the observability surface from the outside: a traced cold/warm/peer-
# fill request mix leaves one trace ID in every involved daemon's span
# log with consistent cross-process parentage, ?trace=1 returns the
# span-tree envelope, /metrics scrapes clean on every process (router
# included), pprof answers on -debug-addr, and injected faults show up
# as dedicated obs counters.
#
# Usage: scripts/obs_smoke.sh [base_port]   (default: 8900)
set -euo pipefail
cd "$(dirname "$0")/.."

base_port="${1:-8900}"
lb_port=$((base_port + 3))
lb="http://127.0.0.1:$lb_port"
debug_port=$((base_port + 4))
faulty_lb_port=$((base_port + 5))
work="$(mktemp -d)"
pids=()

cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    [[ -n "$pid" ]] && kill -TERM "$pid" 2>/dev/null || true
  done
  for _ in $(seq 1 50); do
    alive=0
    for pid in "${pids[@]:-}"; do
      [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null && alive=1
    done
    [[ $alive -eq 0 ]] && break
    sleep 0.2
  done
  for pid in "${pids[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      echo "process $pid ignored SIGTERM; killing"
      kill -KILL "$pid" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$work"
  exit $status
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work/graphpiped" ./cmd/graphpiped
go build -o "$work/graphpipe-lb" ./cmd/graphpipe-lb
go build -o "$work/fleetgen" ./cmd/fleetgen

peers=""
for i in 0 1 2; do
  peers="$peers,http://127.0.0.1:$((base_port + i))"
done
peers="${peers#,}"

echo "== boot 3 shards with trace logs ($peers)"
for i in 0 1 2; do
  port=$((base_port + i))
  extra=()
  if [[ $i -eq 0 ]]; then
    extra=(-debug-addr "127.0.0.1:$debug_port")
  fi
  "$work/graphpiped" -addr "127.0.0.1:$port" -cache-dir "$work/cache$i" \
    -self "http://127.0.0.1:$port" -peers "$peers" \
    -instance "shard$i" -trace-log "$work/shard$i.trace" "${extra[@]}" &
  pids+=($!)
done

echo "== boot router with trace log on :$lb_port"
"$work/graphpipe-lb" -addr "127.0.0.1:$lb_port" -backends "$peers" \
  -instance lb -trace-log "$work/lb.trace" &
pids+=($!)

for url in ${peers//,/ } "$lb"; do
  up=""
  for _ in $(seq 1 50); do
    curl -fsS "$url/v1/stats" >/dev/null 2>&1 && { up=1; break; }
    sleep 0.2
  done
  [[ -n "$up" ]] || { echo "$url never came up"; exit 1; }
done

req='{"model":"case-study","devices":4}'

echo "== traced cold plan through the router"
curl -fsS -D "$work/cold.h" -o "$work/cold.json" \
  -H "X-Graphpipe-Trace: smoke-cold-1" \
  -X POST "$lb/v1/plan?trace=1" -d "$req"
grep -qi '^x-graphpipe-trace: smoke-cold-1' "$work/cold.h" \
  || { echo "router did not echo the trace ID:"; cat "$work/cold.h"; exit 1; }
grep -q '"trace_id":"smoke-cold-1"' "$work/cold.json" \
  || { echo "?trace=1 body is not a span envelope"; head -c 300 "$work/cold.json"; exit 1; }
# The router's envelope nests the shard's: both processes' trees are in
# one response.
grep -q '"process":"lb"' "$work/cold.json" || { echo "no router trace in envelope"; exit 1; }
grep -q '"process":"shard' "$work/cold.json" || { echo "no shard trace in envelope"; exit 1; }
grep -q '"name":"planner.search"' "$work/cold.json" \
  || { echo "cold trace has no planner.search span"; exit 1; }

echo "== untraced plan for the fingerprint (headers only)"
curl -fsS -D "$work/plain.h" -o /dev/null -X POST "$lb/v1/plan" -d "$req"
fp="$(sed -n 's/^[Xx]-[Gg]raphpipe-[Ff]ingerprint: *//p' "$work/plain.h" | tr -d '\r')"
[[ ${#fp} -eq 64 ]] || { echo "bad fingerprint header: '$fp'"; exit 1; }
owner="$(sed -n 's/^[Xx]-[Gg]raphpipe-[Bb]ackend: *//p' "$work/plain.h" | tr -d '\r')"

echo "== traced warm repeat"
curl -fsS -o "$work/warm.json" -H "X-Graphpipe-Trace: smoke-warm-1" \
  -X POST "$lb/v1/plan?trace=1" -d "$req"
grep -q '"trace_id":"smoke-warm-1"' "$work/warm.json" || { echo "warm trace missing"; exit 1; }
grep -q '"name":"cache.memory"' "$work/warm.json" \
  || { echo "warm trace has no cache.memory span"; exit 1; }

echo "== traced peer fill from a non-owner shard"
filler=""
for url in ${peers//,/ }; do
  [[ "$url" != "$owner" ]] && { filler="$url"; break; }
done
curl -fsS -o "$work/fill.json" -H "X-Graphpipe-Trace: smoke-fill-1" \
  "$filler/v1/artifacts/$fp?trace=1"
grep -q '"trace_id":"smoke-fill-1"' "$work/fill.json" || { echo "fill trace missing"; exit 1; }
grep -q '"name":"peer.fill"' "$work/fill.json" \
  || { echo "peer-fill trace has no peer.fill span"; exit 1; }

echo "== trace IDs landed in every involved daemon's span log"
sync
grep -q '"trace_id":"smoke-cold-1"' "$work/lb.trace" \
  || { echo "router log is missing the cold trace"; exit 1; }
cat "$work"/shard*.trace > "$work/shards.trace"
grep -q '"trace_id":"smoke-cold-1"' "$work/shards.trace" \
  || { echo "no shard logged the cold trace"; exit 1; }
grep -q '"trace_id":"smoke-fill-1"' "$work/shards.trace" \
  || { echo "no shard logged the peer-fill trace"; exit 1; }
# Consistent parentage: the shard's root span for the routed cold
# request reports an lb span as its parent; the owner's spans for the
# peer fill report the filler's peer.attempt span as theirs.
grep '"trace_id":"smoke-cold-1"' "$work/shards.trace" | grep -q '"parent":"lb-' \
  || { echo "shard cold-trace root does not parent under the router"; exit 1; }
fill_count="$(grep -c '"trace_id":"smoke-fill-1"' "$work/shards.trace")"
[[ "$fill_count" -ge 2 ]] \
  || { echo "peer-fill trace in $fill_count shard logs, want filler + owner"; exit 1; }

echo "== /metrics scrapes clean on every process"
for url in ${peers//,/ } "$lb"; do
  curl -fsS "$url/metrics" > "$work/metrics.txt"
  grep -q '^# HELP graphpipe_' "$work/metrics.txt" \
    || { echo "$url/metrics is not Prometheus text"; exit 1; }
done
curl -fsS "$lb/metrics" > "$work/lb-metrics.txt"
grep -q '^graphpipe_router_routed_total [1-9]' "$work/lb-metrics.txt" \
  || { echo "router routed_total did not count"; exit 1; }
: > "$work/shard-metrics.txt"
for url in ${peers//,/ }; do
  curl -fsS "$url/metrics" >> "$work/shard-metrics.txt"
done
grep -q '^graphpipe_planned_total [1-9]' "$work/shard-metrics.txt" \
  || { echo "no shard metrics show a planner run"; exit 1; }

echo "== pprof answers on -debug-addr"
curl -fsS "http://127.0.0.1:$debug_port/debug/pprof/cmdline" >/dev/null \
  || { echo "pprof debug listener not answering"; exit 1; }

echo "== traced replay reports phase attribution (fleetgen -trace-sample)"
"$work/fleetgen" -target "$lb" -requests 60 -concurrency 4 -zipf 1.2 \
  -population 8 -devices 2,4 -seed 7 -trace-sample 10 \
  -o "$work/fleetgen.json" | tee "$work/bench.txt"
grep -q 'fleet_phase_queue_share' "$work/bench.txt" \
  || { echo "fleetgen reported no phase attribution"; exit 1; }

echo "== injected faults surface as obs counters"
"$work/graphpipe-lb" -addr "127.0.0.1:$faulty_lb_port" -backends "$peers" \
  -fault-spec 'seed=42;http.drop=1' -health-interval -1s &
pids+=($!)
faulty="http://127.0.0.1:$faulty_lb_port"
for _ in $(seq 1 50); do
  curl -fsS "$faulty/metrics" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -s -o /dev/null -X POST "$faulty/v1/plan" -d "$req" || true
curl -fsS "$faulty/metrics" > "$work/faulty-metrics.txt"
grep -q '^graphpipe_faults_injected_total{site=' "$work/faulty-metrics.txt" \
  || { echo "faulty router shows no faults_injected counter"; exit 1; }

echo "== graceful shutdown (SIGTERM all)"
for pid in "${pids[@]}"; do
  kill -TERM "$pid"
done
for pid in "${pids[@]}"; do
  wait "$pid"
done
pids=()
echo "obs smoke OK"
