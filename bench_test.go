// Package graphpipe's benchmark harness regenerates every table and figure
// of the paper's evaluation (§7) as testing.B benchmarks. Each benchmark
// runs the full pipeline — planner search plus a simulated training
// iteration — for one experiment and reports the paper's metrics as custom
// benchmark outputs (samples/s, search seconds, pipeline depth, speedups),
// so `go test -bench=.` prints the rows behind Figures 6–9, Table 1, and
// the Appendix A.3 parity table. EXPERIMENTS.md records a captured run and
// compares it against the paper's numbers.
//
// Absolute throughputs come from the simulated V100 cluster and are not
// expected to match the paper's testbed; the reproduced artifacts are the
// relative shapes (who wins, how gaps scale, where Piper fails).
package graphpipe_test

import (
	"fmt"
	"testing"
	"time"

	"graphpipe/internal/experiments"
	"graphpipe/internal/graph"
	"graphpipe/internal/models"
)

func modelGraph(model string) (*graph.Graph, error) {
	switch model {
	case "mmt":
		return models.MMT(models.DefaultMMTConfig()), nil
	case "mmt-2b":
		cfg := models.DefaultMMTConfig()
		cfg.Branches = 2
		return models.MMT(cfg), nil
	case "dlrm":
		return models.DLRM(models.DefaultDLRMConfig()), nil
	case "candle-uno":
		return models.CANDLEUno(models.DefaultCANDLEUnoConfig()), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

// reportOutcome attaches one system's metrics to the benchmark.
func reportOutcome(b *testing.B, prefix string, o experiments.Outcome) {
	b.Helper()
	if o.Failed {
		b.ReportMetric(0, prefix+"_samples/s")
		return
	}
	b.ReportMetric(o.Throughput, prefix+"_samples/s")
	b.ReportMetric(o.SearchTime.Seconds(), prefix+"_search_s")
	b.ReportMetric(float64(o.Depth), prefix+"_depth")
}

// --- Figure 6: end-to-end throughput versus device count -----------------
//
// One benchmark per (model, device count) point; each iteration runs both
// planners and one simulated training iteration, and the reported metrics
// are the figure's y-values. Piper is covered by the Table 1 benchmarks
// (its search time dominates and, for DLRM and CANDLE-Uno, it fails).

func benchFig6(b *testing.B, model string, devices int) {
	g, err := modelGraph(model)
	if err != nil {
		b.Fatal(err)
	}
	mb, err := models.PaperMiniBatch(model, devices)
	if err != nil {
		b.Fatal(err)
	}
	var gp, pd experiments.Outcome
	for i := 0; i < b.N; i++ {
		gp = experiments.Run(experiments.GraphPipe, g, devices, mb, experiments.RunOptions{})
		pd = experiments.Run(experiments.PipeDream, g, devices, mb, experiments.RunOptions{})
	}
	if gp.Failed || pd.Failed {
		b.Fatalf("planning failed: gp=%v pd=%v", gp.Err, pd.Err)
	}
	reportOutcome(b, "graphpipe", gp)
	reportOutcome(b, "pipedream", pd)
	b.ReportMetric(gp.Throughput/pd.Throughput, "speedup_x")
}

func BenchmarkFig6MMT4(b *testing.B)  { benchFig6(b, "mmt", 4) }
func BenchmarkFig6MMT8(b *testing.B)  { benchFig6(b, "mmt", 8) }
func BenchmarkFig6MMT16(b *testing.B) { benchFig6(b, "mmt", 16) }
func BenchmarkFig6MMT32(b *testing.B) { benchFig6(b, "mmt", 32) }

func BenchmarkFig6DLRM4(b *testing.B)  { benchFig6(b, "dlrm", 4) }
func BenchmarkFig6DLRM8(b *testing.B)  { benchFig6(b, "dlrm", 8) }
func BenchmarkFig6DLRM16(b *testing.B) { benchFig6(b, "dlrm", 16) }
func BenchmarkFig6DLRM32(b *testing.B) { benchFig6(b, "dlrm", 32) }

func BenchmarkFig6CANDLE4(b *testing.B)  { benchFig6(b, "candle-uno", 4) }
func BenchmarkFig6CANDLE8(b *testing.B)  { benchFig6(b, "candle-uno", 8) }
func BenchmarkFig6CANDLE16(b *testing.B) { benchFig6(b, "candle-uno", 16) }
func BenchmarkFig6CANDLE32(b *testing.B) { benchFig6(b, "candle-uno", 32) }

// --- Table 1: planner search times ----------------------------------------
//
// One benchmark per (model, devices); the per-planner search seconds are
// the table's cells. Piper reports 0 samples/s where the paper prints ✗
// (DLRM and CANDLE-Uno), and the MMT column uses the two-branch variant as
// in §7.2.

func benchTable1(b *testing.B, model string, devices int) {
	g, err := modelGraph(model)
	if err != nil {
		b.Fatal(err)
	}
	paperModel := model
	if model == "mmt-2b" {
		paperModel = "mmt"
	}
	mb, err := models.PaperMiniBatch(paperModel, devices)
	if err != nil {
		b.Fatal(err)
	}
	var gp, pd, pi experiments.Outcome
	for i := 0; i < b.N; i++ {
		gp = experiments.Run(experiments.GraphPipe, g, devices, mb, experiments.RunOptions{})
		pd = experiments.Run(experiments.PipeDream, g, devices, mb, experiments.RunOptions{})
		pi = experiments.Run(experiments.Piper, g, devices, mb,
			experiments.RunOptions{PiperTimeout: 10 * time.Minute})
	}
	b.ReportMetric(gp.SearchTime.Seconds(), "graphpipe_search_s")
	b.ReportMetric(pd.SearchTime.Seconds(), "pipedream_search_s")
	if pi.Failed {
		b.ReportMetric(-1, "piper_search_s") // the paper's ✗
	} else {
		b.ReportMetric(pi.SearchTime.Seconds(), "piper_search_s")
	}
	if !gp.Failed && gp.SearchTime > 0 {
		b.ReportMetric(pd.SearchTime.Seconds()/gp.SearchTime.Seconds(), "pipedream_over_graphpipe_x")
	}
}

func BenchmarkTable1MMT4(b *testing.B)  { benchTable1(b, "mmt-2b", 4) }
func BenchmarkTable1MMT8(b *testing.B)  { benchTable1(b, "mmt-2b", 8) }
func BenchmarkTable1MMT16(b *testing.B) { benchTable1(b, "mmt-2b", 16) }
func BenchmarkTable1MMT32(b *testing.B) { benchTable1(b, "mmt-2b", 32) }

func BenchmarkTable1DLRM4(b *testing.B)  { benchTable1(b, "dlrm", 4) }
func BenchmarkTable1DLRM32(b *testing.B) { benchTable1(b, "dlrm", 32) }

func BenchmarkTable1CANDLE4(b *testing.B)  { benchTable1(b, "candle-uno", 4) }
func BenchmarkTable1CANDLE32(b *testing.B) { benchTable1(b, "candle-uno", 32) }

// --- Figure 7 (left): throughput versus parallel branch count -------------

func benchFig7Branches(b *testing.B, branches, devices int) {
	cfg := models.DefaultCANDLEUnoConfig()
	cfg.Branches = branches
	g := models.CANDLEUno(cfg)
	mb := 1024 * devices
	var gp, pd experiments.Outcome
	for i := 0; i < b.N; i++ {
		gp = experiments.Run(experiments.GraphPipe, g, devices, mb, experiments.RunOptions{})
		pd = experiments.Run(experiments.PipeDream, g, devices, mb, experiments.RunOptions{})
	}
	if gp.Failed || pd.Failed {
		b.Fatalf("planning failed: gp=%v pd=%v", gp.Err, pd.Err)
	}
	reportOutcome(b, "graphpipe", gp)
	reportOutcome(b, "pipedream", pd)
	b.ReportMetric(gp.Throughput/pd.Throughput, "normalized_x")
}

func BenchmarkFig7Branches2x8(b *testing.B)  { benchFig7Branches(b, 2, 8) }
func BenchmarkFig7Branches4x8(b *testing.B)  { benchFig7Branches(b, 4, 8) }
func BenchmarkFig7Branches8x8(b *testing.B)  { benchFig7Branches(b, 8, 8) }
func BenchmarkFig7Branches16x8(b *testing.B) { benchFig7Branches(b, 16, 8) }
func BenchmarkFig7Branches8x16(b *testing.B) { benchFig7Branches(b, 8, 16) }
func BenchmarkFig7Branches16x16(b *testing.B) {
	benchFig7Branches(b, 16, 16)
}

// --- Figure 7 (right): throughput at fixed micro-batch sizes --------------

func benchFig7Micro(b *testing.B, micro int) {
	g := models.MMT(models.DefaultMMTConfig())
	const devices, miniBatch = 8, 128
	var gp, pd experiments.Outcome
	for i := 0; i < b.N; i++ {
		gp = experiments.Run(experiments.GraphPipe, g, devices, miniBatch,
			experiments.RunOptions{ForcedMicroBatch: micro})
		pd = experiments.Run(experiments.PipeDream, g, devices, miniBatch,
			experiments.RunOptions{ForcedMicroBatch: micro})
	}
	if gp.Failed || pd.Failed {
		b.Fatalf("planning failed: gp=%v pd=%v", gp.Err, pd.Err)
	}
	reportOutcome(b, "graphpipe", gp)
	reportOutcome(b, "pipedream", pd)
	b.ReportMetric(gp.Throughput/pd.Throughput, "speedup_x")
}

func BenchmarkFig7Micro1(b *testing.B)  { benchFig7Micro(b, 1) }
func BenchmarkFig7Micro2(b *testing.B)  { benchFig7Micro(b, 2) }
func BenchmarkFig7Micro4(b *testing.B)  { benchFig7Micro(b, 4) }
func BenchmarkFig7Micro8(b *testing.B)  { benchFig7Micro(b, 8) }
func BenchmarkFig7Micro16(b *testing.B) { benchFig7Micro(b, 16) }

// --- Figure 8 / §7.5: case study -------------------------------------------

func BenchmarkFig8CaseStudy(b *testing.B) {
	var res *experiments.CaseStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.CaseStudy(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "graphpipe_over_spp_x")
	b.ReportMetric(res.ParallelOnlySpeedup, "parallel_only_x")
	b.ReportMetric(float64(res.GPDepth), "graphpipe_depth")
	b.ReportMetric(float64(res.SPPDepth), "spp_depth")
	b.ReportMetric(float64(res.GPMicroBatch), "graphpipe_microbatch")
	b.ReportMetric(float64(res.SPPMicroBatch), "spp_microbatch")
}

// --- Figure 9: ablation at 32 GPUs -----------------------------------------

func benchFig9(b *testing.B, model string) {
	g, err := modelGraph(model)
	if err != nil {
		b.Fatal(err)
	}
	mb, err := models.PaperMiniBatch(model, 32)
	if err != nil {
		b.Fatal(err)
	}
	var spp, par, full experiments.Outcome
	for i := 0; i < b.N; i++ {
		spp = experiments.Run(experiments.PipeDream, g, 32, mb, experiments.RunOptions{})
		if spp.Failed {
			b.Fatal(spp.Err)
		}
		par = experiments.Run(experiments.GraphPipe, g, 32, mb,
			experiments.RunOptions{ForcedMicroBatch: spp.MicroBatch})
		full = experiments.Run(experiments.GraphPipe, g, 32, mb, experiments.RunOptions{})
	}
	if par.Failed || full.Failed {
		b.Fatalf("ablation arms failed: %v %v", par.Err, full.Err)
	}
	b.ReportMetric(spp.Throughput, "spp_samples/s")
	b.ReportMetric(par.Throughput, "parallel_samples/s")
	b.ReportMetric(full.Throughput, "graphpipe_samples/s")
	b.ReportMetric(par.Throughput/spp.Throughput, "parallel_x")
	b.ReportMetric(full.Throughput/spp.Throughput, "graphpipe_x")
}

func BenchmarkFig9AblationMMT(b *testing.B)    { benchFig9(b, "mmt") }
func BenchmarkFig9AblationDLRM(b *testing.B)   { benchFig9(b, "dlrm") }
func BenchmarkFig9AblationCANDLE(b *testing.B) { benchFig9(b, "candle-uno") }

// --- Appendix A.3: sequential Transformer parity ---------------------------

func benchA3(b *testing.B, devices int) {
	g := models.SequentialTransformer(32)
	mb, err := models.PaperMiniBatch("mmt", devices)
	if err != nil {
		b.Fatal(err)
	}
	var gp, pd experiments.Outcome
	for i := 0; i < b.N; i++ {
		gp = experiments.Run(experiments.GraphPipe, g, devices, mb, experiments.RunOptions{})
		pd = experiments.Run(experiments.PipeDream, g, devices, mb, experiments.RunOptions{})
	}
	if gp.Failed || pd.Failed {
		b.Fatalf("planning failed: gp=%v pd=%v", gp.Err, pd.Err)
	}
	reportOutcome(b, "graphpipe", gp)
	reportOutcome(b, "pipedream", pd)
	b.ReportMetric(gp.Throughput/pd.Throughput, "parity_x")
}

func BenchmarkA3Sequential4(b *testing.B)  { benchA3(b, 4) }
func BenchmarkA3Sequential8(b *testing.B)  { benchA3(b, 8) }
func BenchmarkA3Sequential16(b *testing.B) { benchA3(b, 16) }
func BenchmarkA3Sequential32(b *testing.B) { benchA3(b, 32) }

// --- Evaluation backends ----------------------------------------------------
//
// One benchmark per registered evaluation backend: the same plan replayed
// on the sequential simulator and the concurrent message-passing runtime.
// The reported samples/s must agree (the eval parity tests pin equality);
// the benchmark compares the evaluators' own wall-clock cost.

func benchEvalBackend(b *testing.B, backend string) {
	g := models.MMT(models.DefaultMMTConfig())
	const devices, miniBatch = 8, 128
	var out experiments.Outcome
	for i := 0; i < b.N; i++ {
		out = runOnBackend(g, devices, miniBatch, backend)
	}
	if out.Failed {
		b.Fatal(out.Err)
	}
	b.ReportMetric(out.Throughput, backend+"_samples/s")
}

func BenchmarkEvalBackendSim(b *testing.B)     { benchEvalBackend(b, "sim") }
func BenchmarkEvalBackendRuntime(b *testing.B) { benchEvalBackend(b, "runtime") }

// --- Ablations of this reproduction's design choices -----------------------
//
// BenchmarkAblationSinkAnchored quantifies the sink-anchored parallel
// splits (DESIGN.md): without them, the merge operators are stranded in
// their own stage and the planner cannot form the paper's "branch tail +
// concatenation" stages.

func BenchmarkAblationSinkAnchored(b *testing.B) {
	g := models.MMT(models.DefaultMMTConfig())
	const devices, miniBatch = 16, 256
	run := func(disable bool) experiments.Outcome {
		return runCoreWith(g, devices, miniBatch, disable)
	}
	var with, without experiments.Outcome
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	if with.Failed || without.Failed {
		b.Fatalf("ablation failed: %v %v", with.Err, without.Err)
	}
	b.ReportMetric(with.Throughput, "anchored_samples/s")
	b.ReportMetric(without.Throughput, "no_anchored_samples/s")
	b.ReportMetric(with.Throughput/without.Throughput, "anchored_gain_x")
}
