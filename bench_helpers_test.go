package graphpipe_test

import (
	"graphpipe/internal/experiments"
	"graphpipe/internal/graph"
)

// runCoreWith plans with the GraphPipe planner (resolved through the
// planner registry by the harness) with the sink-anchored-split ablation
// toggled, reporting an experiments.Outcome for uniform handling in the
// benchmarks.
func runCoreWith(g *graph.Graph, devices, miniBatch int, disableAnchored bool) experiments.Outcome {
	return experiments.Run(experiments.GraphPipe, g, devices, miniBatch,
		experiments.RunOptions{DisableSinkAnchoredSplits: disableAnchored})
}
