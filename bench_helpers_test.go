package graphpipe_test

import (
	"graphpipe/internal/cluster"
	"graphpipe/internal/core"
	"graphpipe/internal/costmodel"
	"graphpipe/internal/experiments"
	"graphpipe/internal/graph"
	"graphpipe/internal/sim"
)

// runCoreWith plans with GraphPipe's core planner directly (so ablation
// options can be set) and simulates one iteration, reporting an
// experiments.Outcome for uniform handling in the benchmarks.
func runCoreWith(g *graph.Graph, devices, miniBatch int, disableAnchored bool) experiments.Outcome {
	out := experiments.Outcome{System: experiments.GraphPipe, Model: g.Name(),
		Devices: devices, MiniBatch: miniBatch}
	topo := cluster.NewSummitTopology(devices)
	model := costmodel.NewDefault(topo)
	p, err := core.NewPlanner(g, model, core.Options{DisableSinkAnchoredSplits: disableAnchored})
	if err != nil {
		out.Failed, out.Err = true, err
		return out
	}
	r, err := p.Plan(miniBatch)
	if err != nil {
		out.Failed, out.Err = true, err
		return out
	}
	res, err := sim.New(g, model).Run(r.Strategy)
	if err != nil {
		out.Failed, out.Err = true, err
		return out
	}
	out.Throughput = res.Throughput
	out.IterationTime = res.IterationTime
	out.Stages = r.Strategy.NumStages()
	out.Depth = r.Strategy.Depth()
	out.MicroBatch = r.Strategy.Stages[0].Config.MicroBatch
	return out
}
