package graphpipe_test

import (
	"graphpipe/internal/experiments"
	"graphpipe/internal/graph"
)

// runCoreWith plans with the GraphPipe planner (resolved through the
// planner registry by the harness) with the sink-anchored-split ablation
// toggled, reporting an experiments.Outcome for uniform handling in the
// benchmarks.
func runCoreWith(g *graph.Graph, devices, miniBatch int, disableAnchored bool) experiments.Outcome {
	return experiments.Run(experiments.GraphPipe, g, devices, miniBatch,
		experiments.RunOptions{DisableSinkAnchoredSplits: disableAnchored})
}

// runOnBackend plans with the GraphPipe planner and evaluates on a named
// backend from the eval registry, so the benchmarks can compare the
// evaluation substrates themselves.
func runOnBackend(g *graph.Graph, devices, miniBatch int, backend string) experiments.Outcome {
	return experiments.Run(experiments.GraphPipe, g, devices, miniBatch,
		experiments.RunOptions{Backend: backend})
}
